package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/perception"
	"repro/internal/tensor"
)

// This file is the dispatcher's batch planner: instances cloned from the
// same checkpoint at the same prune level hold bit-identical weights, so
// their frames can run as ONE fused forward pass — one batched matmul per
// layer — instead of one full pass per instance. The planner sits between
// Submit and the workers:
//
//	Submit → jobs → batcher (group by key) → exec → workers → results
//
// The batcher drains whatever is already queued (up to maxBatch frames per
// planning window), snapshots each instance's batch key — (CheckpointID,
// level, frame geometry) — and groups frames whose keys agree. Groups of
// ≥ 2 execute fused; everything else (singletons, armed-injector
// instances, geometry mismatches) takes the unchanged per-instance path.
//
// Fused execution locks every member instance in name order (a total
// order, so concurrent groups cannot deadlock), revalidates each member's
// key under its lock — an instance retargeted mid-flight falls back to the
// per-instance path after the fused pass — runs the leader's pipeline over
// the stacked frames, and lets each member decide its own frame (its
// threshold and debounce state) from its probability row. Because the
// kernels underneath are bit-identical across batch sizes, a fused frame's
// Detection equals what the per-instance path would have produced; the
// differential harness in batch_diff_test.go holds the two paths to that.

// batchKey is the grouping identity of an instance at planning time:
// frames may fuse only when their instances agree on all three fields.
type batchKey struct {
	ckpt   uint64 // core.ReversibleModel.CheckpointID
	level  int    // active prune level
	pixels int    // pipeline frame geometry (FrameSize²)
}

// BatchObserver is the batch planner's telemetry seam;
// telemetry.Hooks satisfies it structurally.
type BatchObserver interface {
	// ObserveBatch reports one fused batched pass: the number of frames it
	// served and its wall-clock latency (lock wait included).
	ObserveBatch(size int, elapsed time.Duration)
	// ObserveBatchFallback reports frames that were grouped but then sent
	// down the per-instance path at execution time.
	ObserveBatchFallback(frames int)
}

// batchKeySnapshot reads the instance's grouping identity under its lock.
// An instance with an armed fault injector is never batchable: the
// injector's per-frame RNG draws are part of the instance's observable
// behavior, and only the per-instance path preserves their order.
func (i *Instance) batchKeySnapshot() (batchKey, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.inj != nil {
		return batchKey{}, false
	}
	s := i.pipe.FrameSize()
	return batchKey{ckpt: i.rm.CheckpointID(), level: i.rm.Current(), pixels: s * s}, true
}

// batchKeyLocked re-reads the grouping identity with i.mu already held —
// the execution-time revalidation against the planning-time snapshot.
func (i *Instance) batchKeyLocked() (batchKey, bool) {
	if i.inj != nil {
		return batchKey{}, false
	}
	s := i.pipe.FrameSize()
	return batchKey{ckpt: i.rm.CheckpointID(), level: i.rm.Current(), pixels: s * s}, true
}

// batcher is the planning stage: it forms execution units from the job
// stream and forwards them on d.exec. It exits (closing d.exec, which
// stops the workers) when Close closes d.jobs.
func (d *Dispatcher) batcher() {
	defer d.wg.Done()
	defer close(d.exec)
	window := make([]job, 0, d.maxBatch)
	for first := range d.jobs {
		window = append(window[:0], first)
		// Greedy non-blocking drain: whatever is already queued rides in
		// this planning window. Waiting for more would add latency to the
		// frame in hand; a busy fleet fills windows on its own.
	drain:
		for len(window) < d.maxBatch {
			select {
			case j, ok := <-d.jobs:
				if !ok {
					break drain
				}
				window = append(window, j)
			default:
				break drain
			}
		}
		d.plan(window)
	}
}

// plan groups one window's jobs by batch key and emits execution units in
// first-seen order. An instance's key is snapshotted once per window, so
// all of its frames in the window land in the same unit and stay in
// submission order relative to each other.
func (d *Dispatcher) plan(window []job) {
	type snapshot struct {
		key batchKey
		ok  bool
	}
	snaps := make(map[*Instance]snapshot, len(window))
	groups := make(map[batchKey][]job)
	var order []batchKey
	var singles []job
	for _, j := range window {
		s, seen := snaps[j.inst]
		if !seen {
			s.key, s.ok = j.inst.batchKeySnapshot()
			snaps[j.inst] = s
		}
		if !s.ok || j.frame == nil || j.frame.Len() != s.key.pixels {
			singles = append(singles, j)
			continue
		}
		if len(groups[s.key]) == 0 {
			order = append(order, s.key)
		}
		groups[s.key] = append(groups[s.key], j)
	}
	for _, k := range order {
		g := groups[k]
		if len(g) == 1 {
			singles = append(singles, g[0])
			continue
		}
		d.exec <- g
	}
	for _, j := range singles {
		d.exec <- []job{j}
	}
}

// processBatch executes one fused group: health gate, lock members in name
// order, revalidate, one batched forward through the leader's pipeline,
// per-member decides, then results. Members that fail revalidation — and
// the whole group if the fused pass itself fails — fall back to the
// per-instance path after every lock is released.
func (d *Dispatcher) processBatch(g []job) {
	start := now()
	// Same-instance frames must advance that instance's debounce state in
	// submission order, whatever order the planner appended them in.
	sort.SliceStable(g, func(a, b int) bool { return g[a].seq < g[b].seq })

	live := g[:0]
	for _, j := range g {
		if d.monitor != nil && !d.monitor.Gate(j.name) {
			d.results <- Result{Model: j.name, Seq: j.seq, Tag: j.tag, Err: ErrQuarantined, Health: d.monitor.State(j.name)}
			continue
		}
		live = append(live, j)
	}
	if len(live) < 2 {
		for _, j := range live {
			d.results <- d.process(j)
		}
		if d.batchObs != nil && len(live) > 0 {
			d.batchObs.ObserveBatchFallback(len(live))
		}
		return
	}

	// Lock every distinct member in name order — a total order shared by
	// all groups, so two fused passes over overlapping instances cannot
	// deadlock. Instance names are unique within a fleet.
	distinct := make(map[string]*Instance, len(live))
	for _, j := range live {
		distinct[j.name] = j.inst
	}
	names := make([]string, 0, len(distinct))
	for n := range distinct {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		distinct[n].mu.Lock()
	}

	key := snapshotKeyOf(live[0].inst)
	var fused, stale []job
	for _, j := range live {
		if k, ok := j.inst.batchKeyLocked(); ok && k == key && j.frame.Len() == k.pixels {
			fused = append(fused, j)
		} else {
			stale = append(stale, j)
		}
	}

	dets := make([]perception.Detection, len(fused))
	var fusedErr error
	if len(fused) >= 2 {
		fusedErr = runFusedLocked(fused, dets)
	}

	for _, n := range names {
		distinct[n].mu.Unlock()
	}
	elapsed := now().Sub(start)

	if len(fused) < 2 || fusedErr != nil {
		// Nothing (or nothing trustworthy) came out of the fused pass;
		// every live frame re-runs per-instance.
		for _, j := range fused {
			d.results <- d.process(j)
		}
		for _, j := range stale {
			d.results <- d.process(j)
		}
		if d.batchObs != nil {
			d.batchObs.ObserveBatchFallback(len(fused) + len(stale))
		}
		return
	}

	for idx, j := range fused {
		det := dets[idx]
		if p := j.inst.obs.Load(); p != nil {
			(*p).ObserveFrame(elapsed)
		}
		res := Result{Model: j.name, Seq: j.seq, Tag: j.tag, Detection: det, Batched: true, BatchSize: len(fused)}
		if d.monitor != nil {
			res.Health, _ = d.monitor.Observe(j.name, det.Confidence, det.Uncertainty, elapsed, nil)
		}
		d.results <- res
	}
	for _, j := range stale {
		d.results <- d.process(j)
	}
	if d.batchObs != nil {
		d.batchObs.ObserveBatch(len(fused), elapsed)
		if len(stale) > 0 {
			d.batchObs.ObserveBatchFallback(len(stale))
		}
	}
}

// snapshotKeyOf reads an instance's key with its lock already held by the
// caller (processBatch holds every member lock when it revalidates).
func snapshotKeyOf(i *Instance) batchKey {
	k, _ := i.batchKeyLocked()
	return k
}

// runFusedLocked runs the single fused forward pass for a revalidated
// group — every member lock held — and fills dets[i] with member i's own
// decision over its probability row. All members share a checkpoint and
// level, so the leader's weights are bit-identical to every member's; the
// per-member DecideRow applies each member's own threshold and advances
// its own debounce history, exactly as a sequence of per-instance Detect
// calls would. A panic anywhere in the pass is recovered into an error so
// the caller can release locks and fall back.
//
// The leader is the member with the smallest name, not the smallest
// sequence number: names are stable across planning windows, so the same
// instance's weights and im2col buffers serve every fused pass of a
// checkpoint group and stay cache-hot, instead of each window warming a
// different clone's copies.
func runFusedLocked(fused []job, dets []perception.Detection) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fleet: fused batch pass: recovered panic: %v", r)
		}
	}()
	leader, leaderName := fused[0].inst, fused[0].name
	for _, j := range fused[1:] {
		if j.name < leaderName {
			leader, leaderName = j.inst, j.name
		}
	}
	frames := make([]*tensor.Tensor, len(fused))
	for i, j := range fused {
		frames[i] = j.frame
	}
	probs, perr := leader.pipe.ProbsBatch(frames)
	if perr != nil {
		return perr
	}
	for i, j := range fused {
		dets[i] = j.inst.pipe.DecideRow(probs, i)
	}
	return nil
}
