package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/health"
	"repro/internal/telemetry"
)

// TestBatchPlannerHammer runs, under -race via scripts/verify.sh (the
// fleet package is in the race-target list), 1000 submissions through a
// batched dispatcher while everything the planner synchronizes against
// churns concurrently: level retargets invalidating group snapshots
// mid-formation, health-monitor quarantine flapping the gate, observer
// flips on the atomic pointer, a second submitter racing Close, and a
// telemetry scraper. The exact result count proves no frame was lost or
// duplicated across the fused/fallback split.
func TestBatchPlannerHammer(t *testing.T) {
	const (
		framesMain  = 700
		iters       = 1000
		retargets   = 400
		faultBursts = 150
		snapshots   = 100
	)
	reg := telemetry.NewRegistry()
	flat := telemetry.NewHooks(reg)
	monitor := health.NewMonitor(health.Config{QuarantineAfter: 1, QuarantineDwell: 3, ProbationAfter: 1})
	f := New()
	var names []string
	for i := 0; i < 6; i++ {
		// Two checkpoint groups of three clones each, so the planner has
		// real fusion opportunities and real non-fusable mixes.
		name := fmt.Sprintf("v%d", i)
		names = append(names, name)
		inst := newTestInstance(t, name, int64(7+i/3))
		if err := f.Add(inst); err != nil {
			t.Fatal(err)
		}
		if err := monitor.Register(name, inst, nil); err != nil {
			t.Fatal(err)
		}
	}
	d, err := NewDispatcher(f, 4, 32, WithBatching(16), WithHealthMonitor(monitor), WithBatchObserver(flat))
	if err != nil {
		t.Fatal(err)
	}

	var accepted atomic.Int64
	var wg sync.WaitGroup

	// Drainer: counts every result; the channel closes when Close finishes.
	received := make(chan int64)
	go func() {
		var n int64
		for range d.Results() {
			n++
		}
		received <- n
	}()

	// Main submitter: a fixed budget of frames, always before Close (the
	// closer waits on mainDone).
	mainDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(mainDone)
		frame := testFrame()
		for i := 0; i < framesMain; i++ {
			if _, err := d.Submit(names[i%len(names)], frame); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			accepted.Add(1)
		}
	}()
	// Racing submitter: keeps submitting until Close wins the race.
	wg.Add(1)
	closing := make(chan struct{})
	go func() {
		defer wg.Done()
		frame := testFrame()
		for i := 0; i < iters; i++ {
			_, err := d.Submit(names[(i+3)%len(names)], frame)
			if err != nil {
				if !errors.Is(err, ErrClosed) {
					t.Errorf("racing submit: %v", err)
				}
				return
			}
			accepted.Add(1)
		}
		<-closing // budget exhausted before Close started; wait it out
	}()
	// Retargeters: level churn concurrent with batch formation, so group
	// snapshots go stale between planning and execution.
	for _, name := range names {
		inst, _ := f.Get(name)
		wg.Add(1)
		go func(inst *Instance) {
			defer wg.Done()
			for i := 0; i < retargets; i++ {
				if err := inst.ApplyLevel(i % inst.NumLevels()); err != nil {
					t.Errorf("retarget: %v", err)
					return
				}
			}
		}(inst)
	}
	// Quarantine churn: fault bursts flap v0 through
	// Degraded/Quarantined/Probation while its frames are being planned.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < faultBursts; i++ {
			monitor.ObserveFault("v0", health.ReasonError)
		}
	}()
	// Observer flips on the atomic pointer, mid-batch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		inst, _ := f.Get("v1")
		h := telemetry.NewHooks(reg, telemetry.Label{Key: telemetry.LabelModel, Value: "v1"})
		for i := 0; i < iters/2; i++ {
			inst.SetObserver(h)
			inst.SetObserver(nil)
		}
	}()
	// Scraper reads snapshots while the batch counters move.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < snapshots; i++ {
			reg.Snapshot()
		}
	}()

	// Close while the racing submitter may still be mid-Submit.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-mainDone
		d.Close()
		close(closing)
	}()
	wg.Wait()

	if got, want := <-received, accepted.Load(); got != want {
		t.Fatalf("received %d results for %d accepted submissions", got, want)
	}
	// Batch counters stay internally consistent: every fused frame and
	// every fallback was an accepted submission.
	snap := reg.Snapshot()
	fusedFrames := snap.Counters[telemetry.MetricFleetBatchFrames]
	fallbacks := snap.Counters[telemetry.MetricFleetBatchFallbacks]
	if fusedFrames+fallbacks > accepted.Load() {
		t.Fatalf("batch accounting: %d fused + %d fallback > %d accepted",
			fusedFrames, fallbacks, accepted.Load())
	}
}
