package fleet

import (
	"testing"

	"repro/internal/perception"
)

// buildBareAndInstance returns a bare pipeline and an Instance wrapping an
// identical model, for overhead-delta comparisons.
func buildBareAndInstance(t testing.TB) (*perception.Pipeline, *Instance) {
	t.Helper()
	m := testModel(11)
	pipe, err := perception.NewPipeline(m, testFrameSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst := newTestInstance(t, "car0", 11)
	return pipe, inst
}

// TestInstanceDetectZeroAllocOverhead pins the per-instance detect hot
// path with no observer installed: the Instance wrapper (atomic observer
// load + per-instance lock) must add zero allocations over the bare
// pipeline. The forward pass itself allocates (layer outputs), so the
// assertion is on the delta, not on zero.
func TestInstanceDetectZeroAllocOverhead(t *testing.T) {
	pipe, inst := buildBareAndInstance(t)
	frame := testFrame()
	pipe.Detect(frame) // warm both paths
	inst.Detect(frame)
	bare := testing.AllocsPerRun(200, func() { pipe.Detect(frame) })
	wrapped := testing.AllocsPerRun(200, func() { inst.Detect(frame) })
	if wrapped > bare {
		t.Fatalf("Instance.Detect allocates %.1f/op vs bare pipeline %.1f/op — wrapper overhead must be alloc-free", wrapped, bare)
	}
}

func BenchmarkBarePipelineDetect(b *testing.B) {
	pipe, _ := buildBareAndInstance(b)
	frame := testFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Detect(frame)
	}
}

func BenchmarkInstanceDetectNoObserver(b *testing.B) {
	_, inst := buildBareAndInstance(b)
	frame := testFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Detect(frame)
	}
}

func BenchmarkRebalance(b *testing.B) {
	f := New()
	for _, name := range []string{"car0", "car1", "car2", "car3"} {
		if err := f.Add(newTestInstance(b, name, 1)); err != nil {
			b.Fatal(err)
		}
	}
	bg, err := NewBudgetGovernor(f, Budget{EnergyMJ: 26})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bg.Rebalance(); err != nil {
			b.Fatal(err)
		}
	}
}
