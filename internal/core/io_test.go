package core

import (
	"bytes"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestSelfContainedBundleRoundTrip(t *testing.T) {
	rm, m := buildRM(t, 60)
	if err := rm.Calibrate(func(*nn.Sequential) float64 { return 0.8 }); err != nil {
		t.Fatal(err)
	}
	rm.SetCost(2, 1.25, 9)
	var buf bytes.Buffer
	if err := rm.SaveSelfContained(&buf); err != nil {
		t.Fatal(err)
	}

	rm2, err := LoadSelfContained("rebuilt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rm2.NumLevels() != rm.NumLevels() {
		t.Fatalf("level counts %d vs %d", rm2.NumLevels(), rm.NumLevels())
	}
	if rm2.Level(2).LatencyMS != 1.25 || rm2.Level(2).EnergyMJ != 9 {
		t.Error("calibration lost")
	}
	// Full behavioural equivalence across levels, with no caller-provided
	// architecture at all.
	x := tensor.RandNormal(tensor.NewRNG(61), 0, 1, 2, 12)
	for lvl := 0; lvl < rm.NumLevels(); lvl++ {
		if err := rm.ApplyLevel(lvl); err != nil {
			t.Fatal(err)
		}
		if err := rm2.ApplyLevel(lvl); err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(m.Forward(x, false), rm2.Model().Forward(x, false)) {
			t.Errorf("level %d outputs differ", lvl)
		}
	}
	rm.RestoreFull()
	if err := rm2.RestoreFull(); err != nil {
		t.Fatal(err)
	}
	if err := rm2.VerifyDense(); err != nil {
		t.Errorf("loaded bundle fails integrity: %v", err)
	}
}

func TestSelfContainedRejectsPlainBundleAndViceVersa(t *testing.T) {
	rm, m := buildRM(t, 62)
	var plain, self bytes.Buffer
	if err := rm.Save(&plain); err != nil {
		t.Fatal(err)
	}
	if err := rm.SaveSelfContained(&self); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSelfContained("x", bytes.NewReader(plain.Bytes())); err == nil {
		t.Error("plain bundle accepted by LoadSelfContained")
	}
	if _, err := Load(m, bytes.NewReader(self.Bytes())); err == nil {
		t.Error("self-contained bundle accepted by Load")
	}
}

// TestBundleTruncationNeverPanics is the failure-injection sweep: loading
// any truncated prefix must return an error, never panic or succeed.
func TestBundleTruncationNeverPanics(t *testing.T) {
	rm, _ := buildRM(t, 63)
	var buf bytes.Buffer
	if err := rm.SaveSelfContained(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	step := len(full)/60 + 1
	for n := 0; n < len(full); n += step {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic loading %d-byte prefix: %v", n, r)
				}
			}()
			if _, err := LoadSelfContained("x", bytes.NewReader(full[:n])); err == nil {
				t.Errorf("%d-byte prefix loaded without error", n)
			}
		}()
	}
}

// TestBundleBitFlipsRejectedOrConsistent flips single bytes across the
// bundle; every load must either error cleanly or produce a structurally
// valid wrapper (no panics, invariants hold).
func TestBundleBitFlipsRejectedOrConsistent(t *testing.T) {
	rm, _ := buildRM(t, 64)
	var buf bytes.Buffer
	if err := rm.SaveSelfContained(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	step := len(full)/80 + 1
	for off := 4; off < len(full); off += step { // skip the magic itself
		corrupted := append([]byte(nil), full...)
		corrupted[off] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic with byte %d flipped: %v", off, r)
				}
			}()
			got, err := LoadSelfContained("x", bytes.NewReader(corrupted))
			if err != nil {
				return // clean rejection
			}
			// Accepted: the flip hit payload data (a weight value, a
			// calibration float). The wrapper must still be structurally
			// sound.
			for lvl := 0; lvl < got.NumLevels(); lvl++ {
				if err := got.ApplyLevel(lvl); err != nil {
					t.Fatalf("byte %d: ApplyLevel(%d): %v", off, lvl, err)
				}
				if err := got.CheckInvariants(); err != nil {
					t.Fatalf("byte %d: %v", off, err)
				}
			}
			if err := got.RestoreFull(); err != nil {
				t.Fatalf("byte %d: restore: %v", off, err)
			}
		}()
	}
}
