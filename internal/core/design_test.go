package core

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/prune"
)

// sparsityEval returns an evaluator whose "accuracy" is exactly
// 1 − live sparsity, giving DesignLevels a perfectly known curve.
func sparsityEval(m *nn.Sequential) float64 {
	var zeros, total int
	for _, p := range m.PrunableParams() {
		zeros += p.Value.Len() - p.Value.CountNonZero()
		total += p.Value.Len()
	}
	return 1 - float64(zeros)/float64(total)
}

func TestDesignLevelsTracksTargets(t *testing.T) {
	m := buildModel(40)
	targets := []float64{0.9, 0.7, 0.5, 0.3}
	levels, err := DesignLevels(m, prune.MagnitudeGlobal{}, sparsityEval, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != len(targets) {
		t.Fatalf("got %d levels for %d targets", len(levels), len(targets))
	}
	// With accuracy = 1 − sparsity on a 0.05 grid, the deepest level
	// meeting target τ is sparsity ≈ 1 − τ.
	for i, want := range []float64{0.1, 0.3, 0.5, 0.7} {
		if diff := levels[i] - want; diff > 0.051 || diff < -0.051 {
			t.Errorf("level %d = %v, want ≈%v", i, levels[i], want)
		}
	}
	// Strictly increasing.
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Errorf("levels not strictly increasing: %v", levels)
		}
	}
	// The model must be back at its dense state.
	for _, p := range m.PrunableParams() {
		if p.Value.CountNonZero() != p.Value.Len() {
			t.Error("DesignLevels left the model pruned")
		}
	}
}

func TestDesignLevelsUnreachableTargetFallsBack(t *testing.T) {
	m := buildModel(41)
	// Target 1.01 is impossible; the designer takes the shallowest rung.
	levels, err := DesignLevels(m, prune.MagnitudeGlobal{}, sparsityEval, []float64{0.99, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 || levels[0] > 0.06 {
		t.Errorf("levels = %v, want shallow first level", levels)
	}
}

func TestDesignLevelsValidation(t *testing.T) {
	m := buildModel(42)
	if _, err := DesignLevels(m, prune.MagnitudeGlobal{}, sparsityEval, nil); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := DesignLevels(m, prune.MagnitudeGlobal{}, sparsityEval, []float64{0.5, 0.7}); err == nil {
		t.Error("ascending targets accepted")
	}
	if _, err := DesignLevels(m, prune.MagnitudeGlobal{}, sparsityEval, []float64{1.5}); err == nil {
		t.Error("target >1 accepted")
	}
}

func TestDesignLevelsPlansNest(t *testing.T) {
	m := buildModel(43)
	levels, err := DesignLevels(m, prune.MagnitudeGlobal{}, sparsityEval, []float64{0.8, 0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, levels)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(m, plans); err != nil {
		t.Errorf("designed levels do not build: %v", err)
	}
}
