package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Recovery-store wire format ("RST1", little-endian):
//
//	magic   uint32 0x31545352 ("RST1")
//	flags   uint8  (bit 0: half-precision displaced values)
//	nLevels uint32 (delta levels, excluding L0)
//	levels  nLevels × {
//	          nDeltas uint32
//	          deltas  nDeltas × {
//	                    name    uint16-length string
//	                    count   uint32
//	                    indices count × int32
//	                    values  count × float32 (exact) | count × uint16 (lossy)
//	                  }
//	          sum uint64  — the level's sealed FNV-64a checksum
//	        }
//
// Unlike the deployment bundle (io.go), which omits the recovery store and
// recomputes it from dense weights at load, this format ships the store
// itself — the audit/transport artifact for the displaced values — with
// its integrity checksums embedded so corruption in flight or at rest is
// caught at decode time.

const recoveryMagic uint32 = 0x31545352 // "RST1"

// WriteRecovery serializes the store's recovery data (deltas and sealed
// checksums) in the RST1 format.
func (s *CheckpointStore) WriteRecovery(w io.Writer) error {
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], recoveryMagic)
	if _, err := w.Write(n4[:]); err != nil {
		return fmt.Errorf("core: write recovery magic: %w", err)
	}
	flags := byte(0)
	if s.lossy {
		flags = 1
	}
	if _, err := w.Write([]byte{flags}); err != nil {
		return fmt.Errorf("core: write recovery flags: %w", err)
	}
	binary.LittleEndian.PutUint32(n4[:], uint32(len(s.deltas)-1))
	if _, err := w.Write(n4[:]); err != nil {
		return fmt.Errorf("core: write recovery level count: %w", err)
	}
	var n8 [8]byte
	for l := 1; l < len(s.deltas); l++ {
		ds := s.deltas[l]
		binary.LittleEndian.PutUint32(n4[:], uint32(len(ds)))
		if _, err := w.Write(n4[:]); err != nil {
			return fmt.Errorf("core: write recovery delta count: %w", err)
		}
		for di := range ds {
			d := &ds[di]
			if err := writeString(w, d.param); err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(n4[:], uint32(d.count()))
			if _, err := w.Write(n4[:]); err != nil {
				return fmt.Errorf("core: write recovery count: %w", err)
			}
			for _, k := range d.indices {
				binary.LittleEndian.PutUint32(n4[:], uint32(k))
				if _, err := w.Write(n4[:]); err != nil {
					return fmt.Errorf("core: write recovery index: %w", err)
				}
			}
			if d.values != nil {
				for _, v := range d.values {
					binary.LittleEndian.PutUint32(n4[:], math.Float32bits(v))
					if _, err := w.Write(n4[:]); err != nil {
						return fmt.Errorf("core: write recovery value: %w", err)
					}
				}
			} else {
				for _, v := range d.values16 {
					binary.LittleEndian.PutUint16(n4[:2], v)
					if _, err := w.Write(n4[:2]); err != nil {
						return fmt.Errorf("core: write recovery value: %w", err)
					}
				}
			}
		}
		binary.LittleEndian.PutUint64(n8[:], s.sums[l])
		if _, err := w.Write(n8[:]); err != nil {
			return fmt.Errorf("core: write recovery checksum: %w", err)
		}
	}
	return nil
}

// ReadRecovery reads an RST1 stream into a payload-only CheckpointStore:
// it carries the deltas and checksums (VerifyLevel, StoreBytes,
// StoredWeights, WriteRecovery all work) but no dense snapshot or level
// library, so NewView on it fails. Every level's checksum is verified
// against the recomputed value during decode; a mismatch wraps
// ErrStoreCorrupt.
func ReadRecovery(r io.Reader) (*CheckpointStore, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: read recovery stream: %w", err)
	}
	return DecodeRecovery(data)
}

// DecodeRecovery is ReadRecovery over an in-memory buffer. Allocation is
// bounded by the input length: every count is validated against the bytes
// actually remaining before a slice is made, so arbitrary (fuzzed) input
// cannot force large allocations.
func DecodeRecovery(data []byte) (*CheckpointStore, error) {
	d := &recoveryDecoder{data: data}
	magic, err := d.u32("magic")
	if err != nil {
		return nil, err
	}
	if magic != recoveryMagic {
		return nil, fmt.Errorf("core: bad recovery magic %#x", magic)
	}
	flags, err := d.u8("flags")
	if err != nil {
		return nil, err
	}
	if flags > 1 {
		return nil, fmt.Errorf("core: unknown recovery flags %#x", flags)
	}
	s := &CheckpointStore{lossy: flags == 1}
	valueSize := 4
	if s.lossy {
		valueSize = 2
	}
	nLevels, err := d.u32("level count")
	if err != nil {
		return nil, err
	}
	if int(nLevels) > 1024 {
		return nil, fmt.Errorf("core: implausible recovery level count %d", nLevels)
	}
	s.deltas = make([][]delta, 1, nLevels+1)
	s.sums = make([]uint64, 1, nLevels+1)
	for l := 1; l <= int(nLevels); l++ {
		nDeltas, err := d.u32("delta count")
		if err != nil {
			return nil, err
		}
		// Each delta costs ≥ 2+4 bytes on the wire even when empty.
		if int64(nDeltas) > int64(d.remaining())/6 {
			return nil, fmt.Errorf("core: implausible recovery delta count %d", nDeltas)
		}
		ds := make([]delta, 0, nDeltas)
		for j := 0; j < int(nDeltas); j++ {
			name, err := d.str()
			if err != nil {
				return nil, err
			}
			count, err := d.u32("displaced count")
			if err != nil {
				return nil, err
			}
			if int64(count) > int64(d.remaining())/int64(4+valueSize) {
				return nil, fmt.Errorf("core: implausible displaced count %d for %q", count, name)
			}
			dd := delta{param: name, indices: make([]int32, count)}
			for k := range dd.indices {
				v, err := d.u32("index")
				if err != nil {
					return nil, err
				}
				dd.indices[k] = int32(v)
			}
			if s.lossy {
				dd.values16 = make([]uint16, count)
				for k := range dd.values16 {
					v, err := d.u16("value")
					if err != nil {
						return nil, err
					}
					dd.values16[k] = v
				}
			} else {
				dd.values = make([]float32, count)
				for k := range dd.values {
					v, err := d.u32("value")
					if err != nil {
						return nil, err
					}
					dd.values[k] = math.Float32frombits(v)
				}
			}
			ds = append(ds, dd)
		}
		sum, err := d.u64("checksum")
		if err != nil {
			return nil, err
		}
		if got := levelChecksum(ds); got != sum {
			return nil, fmt.Errorf("core: recovery level L%d checksum %#x != embedded %#x: %w", l, got, sum, ErrStoreCorrupt)
		}
		s.deltas = append(s.deltas, ds)
		s.sums = append(s.sums, sum)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after recovery stream", d.remaining())
	}
	return s, nil
}

// recoveryDecoder reads little-endian primitives from an in-memory buffer.
type recoveryDecoder struct {
	data []byte
	off  int
}

func (d *recoveryDecoder) remaining() int { return len(d.data) - d.off }

func (d *recoveryDecoder) take(n int, what string) ([]byte, error) {
	if d.remaining() < n {
		return nil, fmt.Errorf("core: truncated recovery stream reading %s (%d of %d bytes)", what, d.remaining(), n)
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *recoveryDecoder) u8(what string) (byte, error) {
	b, err := d.take(1, what)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *recoveryDecoder) u16(what string) (uint16, error) {
	b, err := d.take(2, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *recoveryDecoder) u32(what string) (uint32, error) {
	b, err := d.take(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *recoveryDecoder) u64(what string) (uint64, error) {
	b, err := d.take(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *recoveryDecoder) str() (string, error) {
	n, err := d.u16("string length")
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n), "string")
	if err != nil {
		return "", err
	}
	return string(b), nil
}
