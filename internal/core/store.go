package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/nn"
)

// ErrStoreCorrupt is the sentinel wrapped by every integrity failure of the
// recovery store. A corrupted store is unrecoverable by design — the
// displaced dense values exist nowhere else at runtime — so detection is
// the whole contract: a revert that would write corrupted values refuses to
// touch the weights and surfaces this error instead, and the health
// watchdog quarantines the instance permanently. See
// docs/ARCHITECTURE.md ("Unrecoverable by design").
var ErrStoreCorrupt = errors.New("recovery store corrupt")

// CheckpointStore is the shared, immutable half of a reversible model: the
// sealed dense weight snapshot, the level library, every level's deltas
// (displaced values + indices), and a per-level integrity checksum. One
// store backs any number of ReversibleModel views — a fleet cloned from one
// checkpoint holds the O(model) state once and O(active deltas) per
// instance.
//
// The store is logically immutable after Build: views only read it. The
// refcount (Acquire/Release) tracks attached views so tests can assert
// leak-freedom and RefreshStore can insist on sole ownership before
// rewriting the snapshot. Refcounting is synchronized; everything else
// relies on immutability for concurrent-read safety.
type CheckpointStore struct {
	levels []*Level
	deltas [][]delta    // deltas[l] moves level l-1 → l, for l ≥ 1
	dense  []denseParam // sealed dense snapshot, in model parameter order
	hash0  uint64       // FNV-64a of dense prunable weights at seal time
	ckpt   uint64       // hash0 folded with every level's delta layout
	lossy  bool         // half-precision displaced values
	sums   []uint64     // sums[l] is the checksum over deltas[l]; sums[0] unused

	mu   sync.Mutex
	refs int
}

// denseParam is one sealed parameter buffer of the snapshot. Prunable
// buffers are aliased copy-on-write by views; the rest are copied at view
// construction (biases are tiny).
type denseParam struct {
	name     string
	data     []float32
	prunable bool
}

// seal computes the per-level checksums over the captured deltas. Called
// once at Build/RefreshStore time, after which the store is immutable.
func (s *CheckpointStore) seal() {
	s.sums = make([]uint64, len(s.deltas))
	for l := 1; l < len(s.deltas); l++ {
		s.sums[l] = levelChecksum(s.deltas[l])
	}
}

// FNV-64a parameters (hash/fnv's, inlined so the restore hot path never
// pays an interface call per word).
const (
	fnvOffset64 uint64 = 0xcbf29ce484222325
	fnvPrime64  uint64 = 0x100000001b3
)

// levelChecksum folds one level's deltas — parameter names, pruned indices,
// and the bit patterns of the stored displaced values — into a 64-bit sum.
// It covers the stored representation (float32 or bfloat16), so a single
// flipped bit anywhere in the level's recovery data changes the sum.
//
// The fold is an FNV-64a variant applied per 32-bit word across four
// interleaved lanes that are cross-folded at the end. Plain FNV is a
// serial xor-multiply chain, so a straightforward implementation runs at
// multiply *latency*; four independent lanes run at multiply *throughput*.
// That matters because the revert path verifies every level it crosses
// before writing a single weight (see ReversibleModel.ApplyLevel), and the
// paper's headline claim — reversible restore ≪ dense checkpoint reload —
// must survive the integrity check riding on it.
func levelChecksum(ds []delta) uint64 {
	h0 := fnvOffset64
	h1 := fnvOffset64 ^ 0x9e3779b97f4a7c15
	h2 := fnvOffset64 ^ 0xbf58476d1ce4e5b9
	h3 := fnvOffset64 ^ 0x94d049bb133111eb
	for di := range ds {
		d := &ds[di]
		// Names are a few bytes; fold them (with a length separator) through
		// lane 0 — latency is irrelevant here.
		h0 = (h0 ^ uint64(len(d.param))) * fnvPrime64
		for i := 0; i < len(d.param); i++ {
			h0 = (h0 ^ uint64(d.param[i])) * fnvPrime64
		}
		idx := d.indices
		i := 0
		for ; i+4 <= len(idx); i += 4 {
			h0 = (h0 ^ uint64(uint32(idx[i]))) * fnvPrime64
			h1 = (h1 ^ uint64(uint32(idx[i+1]))) * fnvPrime64
			h2 = (h2 ^ uint64(uint32(idx[i+2]))) * fnvPrime64
			h3 = (h3 ^ uint64(uint32(idx[i+3]))) * fnvPrime64
		}
		for ; i < len(idx); i++ {
			h0 = (h0 ^ uint64(uint32(idx[i]))) * fnvPrime64
		}
		if d.values != nil {
			vs := d.values
			i = 0
			for ; i+4 <= len(vs); i += 4 {
				h0 = (h0 ^ uint64(math.Float32bits(vs[i]))) * fnvPrime64
				h1 = (h1 ^ uint64(math.Float32bits(vs[i+1]))) * fnvPrime64
				h2 = (h2 ^ uint64(math.Float32bits(vs[i+2]))) * fnvPrime64
				h3 = (h3 ^ uint64(math.Float32bits(vs[i+3]))) * fnvPrime64
			}
			for ; i < len(vs); i++ {
				h0 = (h0 ^ uint64(math.Float32bits(vs[i]))) * fnvPrime64
			}
		} else {
			vs := d.values16
			i = 0
			for ; i+4 <= len(vs); i += 4 {
				h0 = (h0 ^ uint64(vs[i])) * fnvPrime64
				h1 = (h1 ^ uint64(vs[i+1])) * fnvPrime64
				h2 = (h2 ^ uint64(vs[i+2])) * fnvPrime64
				h3 = (h3 ^ uint64(vs[i+3])) * fnvPrime64
			}
			for ; i < len(vs); i++ {
				h0 = (h0 ^ uint64(vs[i])) * fnvPrime64
			}
		}
	}
	h0 = (h0 ^ h1) * fnvPrime64
	h0 = (h0 ^ h2) * fnvPrime64
	h0 = (h0 ^ h3) * fnvPrime64
	return h0
}

// VerifyLevel recomputes level l's checksum against the value sealed at
// Build time. A mismatch wraps ErrStoreCorrupt. l = 0 (the dense level has
// no deltas) and out-of-range levels are errors of usage, not integrity.
func (s *CheckpointStore) VerifyLevel(l int) error {
	if l < 1 || l >= len(s.deltas) {
		return fmt.Errorf("core: VerifyLevel(%d) out of range [1,%d)", l, len(s.deltas))
	}
	if got := levelChecksum(s.deltas[l]); got != s.sums[l] {
		return fmt.Errorf("core: level L%d recovery data checksum %#x != sealed %#x: %w", l, got, s.sums[l], ErrStoreCorrupt)
	}
	return nil
}

// Verify checks every level's checksum and returns the first failure.
func (s *CheckpointStore) Verify() error {
	for l := 1; l < len(s.deltas); l++ {
		if err := s.VerifyLevel(l); err != nil {
			return err
		}
	}
	return nil
}

// CheckpointID returns the store's provenance fingerprint (dense prunable
// weights folded with the nested-plan delta layout), computed once at seal
// time. Every view returns this same cached value, so cloning a thousand
// instances hashes the weights exactly once.
func (s *CheckpointStore) CheckpointID() uint64 { return s.ckpt }

// NumLevels returns the level-library size including the dense level L0.
func (s *CheckpointStore) NumLevels() int { return len(s.levels) }

// Refs returns the number of views currently attached to the store.
func (s *CheckpointStore) Refs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs
}

// Acquire increments the view refcount. NewView calls it for every view it
// hands out; a matching Release must follow or the leak detector in fleet
// teardown tests fires.
func (s *CheckpointStore) Acquire() {
	s.mu.Lock()
	s.refs++
	s.mu.Unlock()
}

// Release decrements the view refcount. Releasing below zero is reported
// as an error (an over-release is a lifecycle bug, not a crash).
func (s *CheckpointStore) Release() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refs <= 0 {
		return fmt.Errorf("core: checkpoint store over-released (refcount %d)", s.refs)
	}
	s.refs--
	return nil
}

// SharedBytes returns the memory held once in the store regardless of how
// many views attach: the sealed dense snapshot plus the recovery store
// (indices and displaced values). Mask bitsets, shared through the level
// library, are counted too.
func (s *CheckpointStore) SharedBytes() int64 {
	var n int64
	for _, dp := range s.dense {
		n += int64(len(dp.data)) * 4
	}
	n += s.StoreBytes()
	for _, lvl := range s.levels {
		if lvl.Plan == nil {
			continue
		}
		for _, m := range lvl.Plan.Masks {
			n += m.StorageBytes()
		}
	}
	return n
}

// StoreBytes returns the recovery store's footprint: displaced values plus
// their indices (experiment T1's memory-overhead result).
func (s *CheckpointStore) StoreBytes() int64 {
	var n int64
	for _, ds := range s.deltas {
		for i := range ds {
			n += int64(len(ds[i].indices))*4 + int64(ds[i].count())*ds[i].bytesPerValue()
		}
	}
	return n
}

// StoredWeights returns the total number of displaced weights held.
func (s *CheckpointStore) StoredWeights() int64 {
	var n int64
	for _, ds := range s.deltas {
		for i := range ds {
			n += int64(ds[i].count())
		}
	}
	return n
}

// CorruptDisplaced flips one pseudo-random bit in each of n displaced
// values of the recovery store, deterministically from seed, and returns
// the number of bits flipped (less than n only when the store holds fewer
// values). It exists for the store-corrupt fault kind and integrity tests:
// the next checksum verification over a touched level must fail.
//
// The corruption hits the shared store, so it is visible to every attached
// view — which is exactly the blast radius real memory corruption would
// have. The chaos harness arms it only on instances built over unshared
// stores.
func (s *CheckpointStore) CorruptDisplaced(n int, seed int64) int {
	total := s.StoredWeights()
	if total == 0 || n <= 0 {
		return 0
	}
	// Deterministic 64-bit LCG (Knuth MMIX constants); no math/rand so the
	// corruption pattern is a pure function of the seed.
	x := uint64(seed)
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x
	}
	flipped := 0
	for i := 0; i < n; i++ {
		if s.flipDisplacedBit(int64(next()%uint64(total)), next()) {
			flipped++
		}
	}
	return flipped
}

// flipDisplacedBit flips one bit (chosen by rnd) of the target-th displaced
// value in store order. Returns false only if target is out of range.
func (s *CheckpointStore) flipDisplacedBit(target int64, rnd uint64) bool {
	for l := 1; l < len(s.deltas); l++ {
		for di := range s.deltas[l] {
			d := &s.deltas[l][di]
			c := int64(d.count())
			if target >= c {
				target -= c
				continue
			}
			if d.values != nil {
				d.values[target] = math.Float32frombits(math.Float32bits(d.values[target]) ^ (1 << (rnd % 32)))
			} else {
				d.values16[target] ^= 1 << uint16(rnd%16)
			}
			return true
		}
	}
	return false
}

// StoreObserver is an optional extension of TransitionObserver. When the
// installed observer also implements it, the view reports every checksum
// verification (one call per level crossed on a revert path) and its
// residency accounting after each completed transition;
// internal/telemetry.Hooks implements it to feed the rpn_store_* families.
type StoreObserver interface {
	// ObserveStoreCheck reports one per-level checksum verification on a
	// restore path; ok is false when the store was found corrupt.
	ObserveStoreCheck(ok bool)
	// ObserveStoreResidency reports the view's private resident bytes and
	// the shared fraction shared/(shared+private) of its total footprint.
	ObserveStoreResidency(privateBytes int64, sharedRatio float64)
}

// Store returns the shared checkpoint store backing this view.
func (rm *ReversibleModel) Store() *CheckpointStore { return rm.store }

// NewView clones a fleet instance from the store: arch (a freshly
// constructed, architecture-identical model) is re-pointed at the sealed
// dense snapshot and wrapped in a ReversibleModel starting at L0.
//
// Prunable parameters alias the snapshot copy-on-write — the first
// transition that writes a parameter materializes a private copy — so a
// just-cloned view retains O(active deltas), not O(model). Non-prunable
// parameters (biases, affine terms) are copied. Views are inference-only:
// their gradient accumulators are dropped, and calibration (Calibrate,
// SetCost) belongs to the first view, before cloning, since level metadata
// is shared.
//
// The view holds one store reference; Release it when the instance is torn
// down.
func (s *CheckpointStore) NewView(arch *nn.Sequential) (*ReversibleModel, error) {
	if arch == nil {
		return nil, fmt.Errorf("core: NewView with nil model")
	}
	if len(s.dense) == 0 {
		return nil, fmt.Errorf("core: NewView on a payload-only store (no dense snapshot)")
	}
	params := arch.Params()
	if len(params) != len(s.dense) {
		return nil, fmt.Errorf("core: NewView architecture has %d parameters, snapshot has %d", len(params), len(s.dense))
	}
	for _, dp := range s.dense {
		p := arch.Param(dp.name)
		if p == nil {
			return nil, fmt.Errorf("core: NewView architecture lacks parameter %q", dp.name)
		}
		if p.Value.Len() != len(dp.data) {
			return nil, fmt.Errorf("core: NewView parameter %q has %d weights, snapshot has %d", dp.name, p.Value.Len(), len(dp.data))
		}
		if p.Prunable != dp.prunable {
			return nil, fmt.Errorf("core: NewView parameter %q prunable=%v, snapshot has %v", dp.name, p.Prunable, dp.prunable)
		}
	}
	view := &ReversibleModel{model: arch, store: s, aliased: make(map[string]bool, len(s.dense))}
	for _, dp := range s.dense {
		p := arch.Param(dp.name)
		if dp.prunable {
			p.Value.SetData(dp.data)
			view.aliased[dp.name] = true
		} else {
			copy(p.Value.Data(), dp.data)
			view.privateBytes += int64(len(dp.data)) * 4
		}
		// Inference-only view: release the gradient accumulator so the
		// clone does not carry a second O(model) buffer.
		p.Grad = nil
	}
	view.rebindAll()
	s.Acquire()
	return view, nil
}

// Release detaches the view from its store. Further ApplyLevel calls on
// the view fail; a second Release is reported as an error (the lifecycle
// bug the refcount exists to catch), not a panic.
func (rm *ReversibleModel) Release() error {
	if rm.released {
		return fmt.Errorf("core: view of store %#x already released (double Release)", rm.store.ckpt)
	}
	rm.released = true
	return rm.store.Release()
}

// Released reports whether Release has been called on this view.
func (rm *ReversibleModel) Released() bool { return rm.released }

// PrivateBytes returns the view's resident weight memory: materialized
// copy-on-write buffers plus the copied non-prunable parameters. A freshly
// cloned view reports only the latter (a few biases); the number grows as
// transitions touch parameters.
func (rm *ReversibleModel) PrivateBytes() int64 { return rm.privateBytes }

// SharedRatio returns shared/(shared+private): the fraction of this view's
// total weight-and-store footprint resident once in the shared store. 1.0
// means a pure alias.
func (rm *ReversibleModel) SharedRatio() float64 {
	shared := rm.store.SharedBytes()
	total := shared + rm.privateBytes
	if total == 0 {
		return 1
	}
	return float64(shared) / float64(total)
}

// Privatize materializes every still-aliased prunable parameter, giving
// the view private copies of all weight buffers. Chaos harnesses call it
// before arming fault injectors that write weights directly (NaN poison,
// bit flips), so injected damage stays within the targeted instance
// instead of reaching siblings through the shared snapshot.
func (rm *ReversibleModel) Privatize() {
	for name, shared := range rm.aliased {
		if shared {
			rm.materialize(name)
		}
	}
}

// CorruptDisplaced forwards to the store's displaced-value corruptor (the
// store-corrupt fault point lands on the view it targets).
func (rm *ReversibleModel) CorruptDisplaced(n int, seed int64) int {
	return rm.store.CorruptDisplaced(n, seed)
}

// materialize gives the view a private copy of one prunable parameter the
// first time a transition writes it: the snapshot buffer is copied, the
// live tensor re-pointed, and the cached per-delta buffers rebound.
func (rm *ReversibleModel) materialize(name string) {
	if !rm.aliased[name] {
		return
	}
	p := rm.model.Param(name)
	private := make([]float32, p.Value.Len())
	copy(private, p.Value.Data())
	p.Value.SetData(private)
	rm.aliased[name] = false
	rm.privateBytes += int64(len(private)) * 4
	rm.rebind(name, private)
	rm.reportResidency()
}

// rebind updates the cached live-buffer slice of every delta touching the
// given parameter.
func (rm *ReversibleModel) rebind(name string, buf []float32) {
	for l := 1; l < len(rm.store.deltas); l++ {
		for di := range rm.store.deltas[l] {
			if rm.store.deltas[l][di].param == name {
				rm.bufs[l][di] = buf
			}
		}
	}
}

// rebindAll rebuilds the per-delta live-buffer cache from the model's
// current tensors. The cache mirrors store.deltas index-for-index so the
// ApplyLevel hot loop stays allocation- and lookup-free.
func (rm *ReversibleModel) rebindAll() {
	rm.bufs = make([][][]float32, len(rm.store.deltas))
	for l := 1; l < len(rm.store.deltas); l++ {
		rm.bufs[l] = make([][]float32, len(rm.store.deltas[l]))
		for di := range rm.store.deltas[l] {
			rm.bufs[l][di] = rm.model.Param(rm.store.deltas[l][di].param).Value.Data()
		}
	}
}

// reportResidency pushes the view's current residency accounting to the
// observer, when one implementing StoreObserver is installed.
func (rm *ReversibleModel) reportResidency() {
	if so, ok := rm.observer.(StoreObserver); ok {
		so.ObserveStoreResidency(rm.privateBytes, rm.SharedRatio())
	}
}
