package core

import "time"

// now is the package clock seam. Transition-latency measurements for the
// TransitionObserver hook read through it so tests can pin time to a fake
// clock and assert exact observed latencies.
var now = time.Now
