package core

import (
	"sync"
	"testing"
)

// TestConcurrentAcquireApplyRelease hammers the store refcount from many
// goroutines while every goroutine transitions its own private view. Views
// themselves are single-owner (each goroutine drives only its own), but
// Acquire/NewView/Release and all shared-store reads must be race-free —
// this is the -race contract the fleet relies on when instances are cloned
// and torn down while siblings keep transitioning.
func TestConcurrentAcquireApplyRelease(t *testing.T) {
	rm, _ := buildRM(t, 17)
	st := rm.Store()
	const workers = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				view, err := st.NewView(buildModel(seed))
				if err != nil {
					errs <- err
					return
				}
				for l := 0; l < view.NumLevels(); l++ {
					if err := view.ApplyLevel(l); err != nil {
						errs <- err
						return
					}
				}
				if err := view.ApplyLevel(0); err != nil {
					errs <- err
					return
				}
				if err := view.VerifyDense(); err != nil {
					errs <- err
					return
				}
				if err := view.Release(); err != nil {
					errs <- err
					return
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := st.Refs(); got != 1 {
		t.Fatalf("leaked store references: Refs = %d, want 1 (the builder's view)", got)
	}
	// The original view must be untouched by all that cloning.
	if err := rm.VerifyDense(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentBareAcquireRelease exercises the raw refcount without
// views, including the over-release error path, under -race.
func TestConcurrentBareAcquireRelease(t *testing.T) {
	rm, _ := buildRM(t, 18)
	st := rm.Store()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				st.Acquire()
				if err := st.Release(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := st.Refs(); got != 1 {
		t.Fatalf("Refs = %d after balanced acquire/release storm, want 1", got)
	}
}
