package core

import "fmt"

// failf panics with the formatted message. It is this package's single
// sanctioned panic site under the nopanic analyzer: level bookkeeping indices are validated on construction; an out-of-range level index at runtime is a caller bug, not a recoverable condition.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) //lint:allow(nopanic) documented programmer-error invariant
}
