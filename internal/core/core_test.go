package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

func buildModel(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	return nn.NewSequential("m",
		nn.NewDense("fc1", 12, 24, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("fc2", 24, 16, rng),
		nn.NewReLU("relu2"),
		nn.NewDense("fc3", 16, 4, rng),
	)
}

func buildRM(t *testing.T, seed int64, sparsities ...float64) (*ReversibleModel, *nn.Sequential) {
	t.Helper()
	if len(sparsities) == 0 {
		sparsities = []float64{0.3, 0.6, 0.9}
	}
	m := buildModel(seed)
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, sparsities)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Build(m, plans)
	if err != nil {
		t.Fatal(err)
	}
	return rm, m
}

func TestBuildBasics(t *testing.T) {
	rm, _ := buildRM(t, 1)
	if rm.NumLevels() != 4 {
		t.Fatalf("NumLevels = %d, want 4", rm.NumLevels())
	}
	if rm.Current() != 0 {
		t.Errorf("fresh model at level %d", rm.Current())
	}
	if rm.Level(0).Name != "L0" || rm.Level(3).Name != "L3" {
		t.Error("level names wrong")
	}
	if rm.Level(1).Sparsity <= 0 || rm.Level(3).Sparsity <= rm.Level(1).Sparsity {
		t.Error("level sparsities not monotone")
	}
	if err := rm.VerifyDense(); err != nil {
		t.Errorf("fresh model fails VerifyDense: %v", err)
	}
}

func TestBuildRejectsNonNested(t *testing.T) {
	m := buildModel(2)
	p1, _ := prune.PlanSingle(prune.Random{Seed: 1}, m, 0.5)
	p2, _ := prune.PlanSingle(prune.Random{Seed: 2}, m, 0.6)
	if _, err := Build(m, []*prune.Plan{p1, p2}); err == nil {
		t.Error("non-nested plans accepted")
	}
	if _, err := Build(m, nil); err == nil {
		t.Error("empty plan list accepted")
	}
	if _, err := Build(nil, []*prune.Plan{p1}); err == nil {
		t.Error("nil model accepted")
	}
}

func TestBuildRejectsForeignPlan(t *testing.T) {
	m := buildModel(3)
	other := buildModel(4)
	otherPlan, _ := prune.PlanSingle(prune.MagnitudeGlobal{}, other, 0.5)
	// Same architecture, so names match; corrupt a mask length instead.
	bad := &prune.Plan{Method: "x", Sparsity: 0.5, Masks: map[string]*prune.Mask{
		"fc1/weight": prune.NewMask(7),
	}}
	if _, err := Build(m, []*prune.Plan{bad}); err == nil {
		t.Error("mask length mismatch accepted")
	}
	bad2 := &prune.Plan{Method: "x", Sparsity: 0.5, Masks: map[string]*prune.Mask{
		"nope/weight": prune.NewMask(7),
	}}
	if _, err := Build(m, []*prune.Plan{bad2}); err == nil {
		t.Error("unknown parameter accepted")
	}
	_ = otherPlan
}

func TestApplyAndRestoreRoundTrip(t *testing.T) {
	rm, m := buildRM(t, 5)
	dense := snapshot(m)

	for target := 1; target < rm.NumLevels(); target++ {
		if err := rm.ApplyLevel(target); err != nil {
			t.Fatal(err)
		}
		if err := rm.CheckInvariants(); err != nil {
			t.Errorf("level %d: %v", target, err)
		}
		if err := rm.RestoreFull(); err != nil {
			t.Fatal(err)
		}
		if err := rm.VerifyDense(); err != nil {
			t.Errorf("after L%d round trip: %v", target, err)
		}
		compareSnapshots(t, m, dense)
	}
}

func TestApplySparsityMatchesLevel(t *testing.T) {
	rm, m := buildRM(t, 6)
	for i := 0; i < rm.NumLevels(); i++ {
		if err := rm.ApplyLevel(i); err != nil {
			t.Fatal(err)
		}
		var zeros, total int
		for _, p := range m.PrunableParams() {
			zeros += p.Value.Len() - p.Value.CountNonZero()
			total += p.Value.Len()
		}
		got := float64(zeros) / float64(total)
		want := rm.Level(i).Sparsity
		// Allow for natural zeros in the dense weights (none expected from
		// He init, but keep slack).
		if got < want-1e-9 || got > want+0.01 {
			t.Errorf("level %d live sparsity %v, calibrated %v", i, got, want)
		}
	}
}

func TestTransitionsAreIncremental(t *testing.T) {
	rm, _ := buildRM(t, 7)
	// Moving one level must touch fewer weights than jumping to deepest.
	stepCost := rm.WeightsChanged(0, 1)
	fullCost := rm.WeightsChanged(0, 3)
	if stepCost >= fullCost {
		t.Errorf("step cost %d >= full cost %d", stepCost, fullCost)
	}
	// Symmetric.
	if rm.WeightsChanged(3, 0) != fullCost {
		t.Error("WeightsChanged not symmetric")
	}
	// Triangle equality for a chain: 0→1→3 equals 0→3.
	if rm.WeightsChanged(0, 1)+rm.WeightsChanged(1, 3) != fullCost {
		t.Error("chain costs do not add up")
	}
}

func TestStatsAccounting(t *testing.T) {
	rm, _ := buildRM(t, 8)
	if err := rm.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	if err := rm.ApplyLevel(2); err != nil { // no-op
		t.Fatal(err)
	}
	if err := rm.ApplyLevel(0); err != nil {
		t.Fatal(err)
	}
	s := rm.Stats()
	if s.Transitions != 2 || s.Deepen != 1 || s.Revert != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.WeightsZeroed != s.WeightsRestored {
		t.Errorf("zeroed %d != restored %d for a symmetric round trip", s.WeightsZeroed, s.WeightsRestored)
	}
	if s.WeightsZeroed != rm.WeightsChanged(0, 2) {
		t.Errorf("zeroed %d != predicted %d", s.WeightsZeroed, rm.WeightsChanged(0, 2))
	}
	rm.ResetStats()
	if rm.Stats().Transitions != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestStoreSizeEqualsDeepestLevel(t *testing.T) {
	rm, m := buildRM(t, 9)
	deepest := rm.Level(rm.NumLevels() - 1)
	var wantStored int64
	for _, p := range m.PrunableParams() {
		if mask, ok := deepest.Plan.Masks[p.Name]; ok {
			wantStored += int64(mask.PrunedCount())
		}
	}
	if rm.StoredWeights() != wantStored {
		t.Errorf("StoredWeights = %d, want %d (deepest level pruned count)", rm.StoredWeights(), wantStored)
	}
	if rm.StoreBytes() != wantStored*8 {
		t.Errorf("StoreBytes = %d, want %d", rm.StoreBytes(), wantStored*8)
	}
}

func TestInferenceChangesAcrossLevels(t *testing.T) {
	rm, m := buildRM(t, 10, 0.5, 0.95)
	x := tensor.RandNormal(tensor.NewRNG(11), 0, 1, 3, 12)
	y0 := m.Forward(x, false).Clone()
	if err := rm.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	y2 := m.Forward(x, false).Clone()
	if tensor.Equal(y0, y2) {
		t.Error("95% pruning did not change outputs — levels not taking effect")
	}
	if err := rm.RestoreFull(); err != nil {
		t.Fatal(err)
	}
	y0b := m.Forward(x, false)
	if !tensor.Equal(y0, y0b) {
		t.Error("outputs after restore differ from original dense outputs")
	}
}

func TestCalibrate(t *testing.T) {
	rm, _ := buildRM(t, 12)
	calls := 0
	err := rm.Calibrate(func(m *nn.Sequential) float64 {
		calls++
		return 1.0 / float64(calls)
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != rm.NumLevels() {
		t.Errorf("evaluator called %d times, want %d", calls, rm.NumLevels())
	}
	if rm.Level(0).Accuracy != 1.0 || rm.Level(3).Accuracy != 0.25 {
		t.Error("accuracy not recorded per level")
	}
	if rm.Current() != 0 {
		t.Error("Calibrate did not restore previous level")
	}
	if err := rm.Calibrate(nil); err == nil {
		t.Error("nil evaluator accepted")
	}
}

func TestSetCost(t *testing.T) {
	rm, _ := buildRM(t, 13)
	rm.SetCost(2, 1.5, 20)
	if rm.Level(2).LatencyMS != 1.5 || rm.Level(2).EnergyMJ != 20 {
		t.Error("SetCost not recorded")
	}
}

func TestVerifyDenseDetectsTampering(t *testing.T) {
	rm, m := buildRM(t, 14)
	m.Param("fc1/weight").Value.Data()[0] += 1
	if err := rm.VerifyDense(); err == nil {
		t.Error("tampering not detected")
	}
	// At a non-dense level VerifyDense must refuse.
	m.Param("fc1/weight").Value.Data()[0] -= 1
	if err := rm.ApplyLevel(1); err != nil {
		t.Fatal(err)
	}
	if err := rm.VerifyDense(); err == nil {
		t.Error("VerifyDense at L1 accepted")
	}
}

func TestRefreshStoreAfterFineTune(t *testing.T) {
	rm, m := buildRM(t, 15)
	// Simulate offline fine-tuning at L0: perturb all weights.
	for _, p := range m.PrunableParams() {
		p.Value.AddScalar(0.01)
	}
	if err := rm.RefreshStore(); err != nil {
		t.Fatal(err)
	}
	dense := snapshot(m)
	if err := rm.ApplyLevel(3); err != nil {
		t.Fatal(err)
	}
	if err := rm.RestoreFull(); err != nil {
		t.Fatal(err)
	}
	compareSnapshots(t, m, dense)
	if err := rm.VerifyDense(); err != nil {
		t.Errorf("VerifyDense after refresh: %v", err)
	}
	// RefreshStore away from L0 must refuse.
	if err := rm.ApplyLevel(1); err != nil {
		t.Fatal(err)
	}
	if err := rm.RefreshStore(); err == nil {
		t.Error("RefreshStore at L1 accepted")
	}
}

func TestApplyLevelErrors(t *testing.T) {
	rm, _ := buildRM(t, 16)
	if err := rm.ApplyLevel(-1); err == nil {
		t.Error("negative level accepted")
	}
	if err := rm.ApplyLevel(99); err == nil {
		t.Error("out-of-range level accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rm, m := buildRM(t, 17)
	if err := rm.Calibrate(func(mm *nn.Sequential) float64 { return 0.5 }); err != nil {
		t.Fatal(err)
	}
	rm.SetCost(1, 2.5, 30)
	var buf bytes.Buffer
	if err := rm.Save(&buf); err != nil {
		t.Fatal(err)
	}

	m2 := buildModel(99) // same architecture, different weights
	rm2, err := Load(m2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rm2.NumLevels() != rm.NumLevels() {
		t.Fatalf("level count %d vs %d", rm2.NumLevels(), rm.NumLevels())
	}
	if rm2.Level(1).LatencyMS != 2.5 || rm2.Level(1).EnergyMJ != 30 {
		t.Error("calibration lost in round trip")
	}
	// The loaded model must behave identically across levels.
	x := tensor.RandNormal(tensor.NewRNG(18), 0, 1, 2, 12)
	for lvl := 0; lvl < rm.NumLevels(); lvl++ {
		if err := rm.ApplyLevel(lvl); err != nil {
			t.Fatal(err)
		}
		if err := rm2.ApplyLevel(lvl); err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(m.Forward(x, false), m2.Forward(x, false)) {
			t.Errorf("level %d outputs differ after load", lvl)
		}
	}
	rm.RestoreFull()
	rm2.RestoreFull()
}

func TestSaveRefusesAwayFromL0(t *testing.T) {
	rm, _ := buildRM(t, 19)
	if err := rm.ApplyLevel(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rm.Save(&buf); err == nil {
		t.Error("Save at L1 accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(buildModel(20), bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("garbage accepted")
	}
}

// Property: any random walk over levels, ending at L0, restores the dense
// weights bit-exactly — the paper's core reversibility claim.
func TestRandomWalkReversibilityProperty(t *testing.T) {
	rm, m := buildRM(t, 21, 0.2, 0.4, 0.6, 0.8)
	dense := snapshot(m)
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		for k := 0; k < 20; k++ {
			if err := rm.ApplyLevel(rng.Intn(rm.NumLevels())); err != nil {
				return false
			}
			if rm.CheckInvariants() != nil {
				return false
			}
		}
		if err := rm.RestoreFull(); err != nil {
			return false
		}
		if rm.VerifyDense() != nil {
			return false
		}
		for _, p := range m.PrunableParams() {
			if !tensor.Equal(p.Value, dense[p.Name]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: structured plans behave identically under the reversible
// wrapper (masks cover biases and norm parameters too).
func TestStructuredLevelsReversibleProperty(t *testing.T) {
	rng := tensor.NewRNG(22)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	m := nn.NewSequential("cnn",
		nn.NewConv2D("conv1", g, 6, rng),
		nn.NewBatchNorm("bn1", 6),
		nn.NewReLU("relu1"),
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 6*8*8, 16, rng),
		nn.NewReLU("relu2"),
		nn.NewDense("fc2", 16, 3, rng),
	)
	plans, err := (prune.StructuredChannel{}).PlanNested(m, []float64{0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Build(m, plans)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotAll(m)
	if err := rm.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	if err := rm.RestoreFull(); err != nil {
		t.Fatal(err)
	}
	for name, want := range before {
		if !tensor.Equal(m.Param(name).Value, want) {
			t.Errorf("param %s not restored", name)
		}
	}
}

func TestScrubRepairsPrunedPositions(t *testing.T) {
	rm, m := buildRM(t, 70)
	if rm.Scrub() != 0 {
		t.Error("scrub at L0 repaired something")
	}
	if err := rm.ApplyLevel(3); err != nil {
		t.Fatal(err)
	}
	// Corrupt three pruned positions and one kept position.
	w := m.Param("fc1/weight").Value.Data()
	mask := rm.Level(3).Plan.Masks["fc1/weight"]
	prunedHit, keptIdx := 0, -1
	for i := range w {
		if !mask.Keep(i) && prunedHit < 3 {
			w[i] = 42
			prunedHit++
		} else if mask.Keep(i) && keptIdx < 0 {
			keptIdx = i
		}
	}
	keptBefore := w[keptIdx]
	w[keptIdx] = keptBefore + 1

	if repaired := rm.Scrub(); repaired != 3 {
		t.Errorf("scrub repaired %d, want 3", repaired)
	}
	if err := rm.CheckInvariants(); err != nil {
		t.Errorf("invariants broken after scrub: %v", err)
	}
	// Kept-position corruption is beyond scrub's reach…
	if w[keptIdx] == keptBefore {
		t.Error("scrub touched a kept weight")
	}
	// …and is what VerifyDense exists for.
	w[keptIdx] = keptBefore
	if err := rm.RestoreFull(); err != nil {
		t.Fatal(err)
	}
	if err := rm.VerifyDense(); err != nil {
		t.Errorf("after undoing the kept flip: %v", err)
	}
}

func TestHalfPrecisionStore(t *testing.T) {
	m := buildModel(50)
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, []float64{0.3, 0.6, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	dense := snapshot(m)
	rm, err := Build(m, plans, WithHalfPrecisionStore())
	if err != nil {
		t.Fatal(err)
	}

	// The store must be smaller than the exact variant's.
	mExact := buildModel(50)
	plansExact, _ := (prune.MagnitudeGlobal{}).PlanNested(mExact, []float64{0.3, 0.6, 0.9})
	rmExact, err := Build(mExact, plansExact)
	if err != nil {
		t.Fatal(err)
	}
	if rm.StoreBytes() >= rmExact.StoreBytes() {
		t.Errorf("half store %d not below exact %d", rm.StoreBytes(), rmExact.StoreBytes())
	}
	if rm.StoredWeights() != rmExact.StoredWeights() {
		t.Error("half store holds a different number of weights")
	}

	// Restore is approximate but close: bfloat16 keeps ~3 significant
	// digits, so relative error per weight ≤ ~0.8%.
	if err := rm.ApplyLevel(3); err != nil {
		t.Fatal(err)
	}
	if err := rm.RestoreFull(); err != nil {
		t.Fatal(err)
	}
	for name, want := range dense {
		got := m.Param(name).Value
		for i, w := range want.Data() {
			g := got.Data()[i]
			diff := float64(g - w)
			if diff < 0 {
				diff = -diff
			}
			mag := float64(w)
			if mag < 0 {
				mag = -mag
			}
			if diff > 0.008*mag+1e-7 {
				t.Fatalf("%s[%d]: restored %v vs original %v", name, i, g, w)
			}
		}
	}
	// VerifyDense must refuse in lossy mode.
	if err := rm.VerifyDense(); err == nil {
		t.Error("VerifyDense accepted a lossy store")
	}
	// Masks still hold exactly.
	if err := rm.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	if err := rm.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func snapshot(m *nn.Sequential) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor)
	for _, p := range m.PrunableParams() {
		out[p.Name] = p.Value.Clone()
	}
	return out
}

func snapshotAll(m *nn.Sequential) map[string]*tensor.Tensor {
	out := make(map[string]*tensor.Tensor)
	for _, p := range m.Params() {
		out[p.Name] = p.Value.Clone()
	}
	return out
}

func compareSnapshots(t *testing.T, m *nn.Sequential, want map[string]*tensor.Tensor) {
	t.Helper()
	for name, w := range want {
		if !tensor.Equal(m.Param(name).Value, w) {
			t.Errorf("param %s differs from dense snapshot", name)
		}
	}
}
