package core

import (
	"bytes"
	"testing"

	"repro/internal/prune"
)

// FuzzStoreRoundTrip feeds arbitrary bytes to the recovery-store decoder.
// The decoder must never panic or over-allocate, and any input it accepts
// must re-encode and re-decode to an identical store (checksums included).
func FuzzStoreRoundTrip(f *testing.F) {
	seedStore := func(seed int64, sparsities []float64, opts ...BuildOption) {
		m := buildModel(seed)
		plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, sparsities)
		if err != nil {
			f.Fatal(err)
		}
		rm, err := Build(m, plans, opts...)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rm.Store().WriteRecovery(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seedStore(1, []float64{0.3, 0.6, 0.9})
	seedStore(2, []float64{0.5})
	seedStore(3, []float64{0.4, 0.8}, WithHalfPrecisionStore())
	f.Add([]byte{0x52, 0x53, 0x54, 0x31, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte("RST1 garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeRecovery(data)
		if err != nil {
			return
		}
		if err := st.Verify(); err != nil {
			t.Fatalf("decoder accepted a store its own Verify rejects: %v", err)
		}
		var buf bytes.Buffer
		if err := st.WriteRecovery(&buf); err != nil {
			t.Fatalf("re-encode of accepted store: %v", err)
		}
		st2, err := DecodeRecovery(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decode of re-encoded store: %v", err)
		}
		if st.StoredWeights() != st2.StoredWeights() || st.StoreBytes() != st2.StoreBytes() {
			t.Fatalf("round trip changed store accounting: %d/%d != %d/%d",
				st.StoredWeights(), st.StoreBytes(), st2.StoredWeights(), st2.StoreBytes())
		}
		for l := 1; l < len(st.sums); l++ {
			if st.sums[l] != st2.sums[l] {
				t.Fatalf("round trip changed level %d checksum", l)
			}
		}
	})
}
