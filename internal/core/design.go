package core

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/prune"
)

// DesignLevels selects a level library for the given model by sweeping a
// fine-grained nested sparsity ladder, calibrating every rung with eval,
// and picking — for each accuracy target, in descending target order — the
// deepest rung whose calibrated accuracy still meets the target. The
// returned sparsities are strictly increasing and, because every rung comes
// from one nested family, the selected subset is nested too.
//
// This is the offline library-design step of the system: contract floors
// come first, and the sparsity that delivers each floor is discovered from
// measurements rather than guessed. Targets must be in descending order
// (denser levels promise more accuracy). An unreachable target falls back
// to the shallowest remaining rung.
//
// The model is returned to its dense state before DesignLevels returns.
func DesignLevels(model *nn.Sequential, method prune.Method, eval func(*nn.Sequential) float64, targets []float64) ([]float64, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("core: DesignLevels with no targets")
	}
	prev := 2.0
	for _, t := range targets {
		if t <= 0 || t > 1 {
			return nil, fmt.Errorf("core: DesignLevels target %v out of (0,1]", t)
		}
		if t >= prev {
			return nil, fmt.Errorf("core: DesignLevels targets must be strictly descending, got %v after %v", t, prev)
		}
		prev = t
	}

	var sweep []float64
	for s := 0.05; s < 0.96; s += 0.05 {
		sweep = append(sweep, s)
	}
	plans, err := method.PlanNested(model, sweep)
	if err != nil {
		return nil, err
	}
	rm, err := Build(model, plans)
	if err != nil {
		return nil, err
	}
	if err := rm.Calibrate(eval); err != nil {
		return nil, err
	}
	if err := rm.RestoreFull(); err != nil {
		return nil, err
	}

	levels := rm.Levels()[1:] // skip the implicit dense L0
	chosen := make([]float64, 0, len(targets))
	minIdx := 0
	for _, target := range targets {
		best := -1
		for i := minIdx; i < len(levels); i++ {
			if levels[i].Accuracy >= target {
				best = i
			}
		}
		if best < 0 {
			// Target unreachable beyond minIdx: take the shallowest
			// remaining rung so the library stays strictly nested.
			if minIdx >= len(levels) {
				break
			}
			best = minIdx
		}
		chosen = append(chosen, sweep[best])
		minIdx = best + 1
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("core: DesignLevels found no usable levels")
	}
	return chosen, nil
}
