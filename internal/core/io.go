package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/nn"
	"repro/internal/prune"
)

// Deployment bundle format (little-endian):
//
//	magic    uint32 0x30505252 ("RRP0")
//	         dense model weights (nn.Sequential.SaveWeights)
//	nLevels  uint32 (excluding L0)
//	levels   nLevels × {
//	           method   uint16-length string
//	           sparsity float64 bits
//	           nMasks   uint32
//	           masks    nMasks × { name string, prune.Mask }
//	         }
//	calib    (nLevels+1) × { sparsity, accuracy, latencyMS, energyMJ } float64 bits
//
// The recovery store itself is not serialized: it is recomputed from the
// dense weights and the masks at load time, which keeps the bundle minimal
// and guarantees the store matches the weights.

const (
	bundleMagic uint32 = 0x30505252 // "RRP0": architecture provided by caller
	bundleSelf  uint32 = 0x31505252 // "RRP1": architecture embedded
)

// Save writes a deployment bundle for rm. The model must be at L0 so the
// serialized weights are the dense ones. The caller must reconstruct the
// matching architecture before Load; use SaveSelfContained to embed it.
func (rm *ReversibleModel) Save(w io.Writer) error {
	if rm.current != 0 {
		return fmt.Errorf("core: Save at level %d; restore to L0 first", rm.current)
	}
	var magic [4]byte
	binary.LittleEndian.PutUint32(magic[:], bundleMagic)
	if _, err := w.Write(magic[:]); err != nil {
		return fmt.Errorf("core: save magic: %w", err)
	}
	return rm.saveBody(w)
}

// SaveSelfContained writes a bundle that additionally embeds the model
// architecture, so LoadSelfContained can reconstruct everything from the
// stream alone.
func (rm *ReversibleModel) SaveSelfContained(w io.Writer) error {
	if rm.current != 0 {
		return fmt.Errorf("core: Save at level %d; restore to L0 first", rm.current)
	}
	var magic [4]byte
	binary.LittleEndian.PutUint32(magic[:], bundleSelf)
	if _, err := w.Write(magic[:]); err != nil {
		return fmt.Errorf("core: save magic: %w", err)
	}
	if err := rm.model.SaveArchitecture(w); err != nil {
		return fmt.Errorf("core: save architecture: %w", err)
	}
	return rm.saveBody(w)
}

func (rm *ReversibleModel) saveBody(w io.Writer) error {
	if err := rm.model.SaveWeights(w); err != nil {
		return fmt.Errorf("core: save weights: %w", err)
	}
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(rm.store.levels)-1))
	if _, err := w.Write(n4[:]); err != nil {
		return fmt.Errorf("core: save level count: %w", err)
	}
	for _, lvl := range rm.store.levels[1:] {
		if err := writeString(w, lvl.Plan.Method); err != nil {
			return err
		}
		if err := writeFloat64(w, lvl.Plan.Sparsity); err != nil {
			return err
		}
		names := sortedMaskNames(lvl.Plan.Masks)
		binary.LittleEndian.PutUint32(n4[:], uint32(len(names)))
		if _, err := w.Write(n4[:]); err != nil {
			return fmt.Errorf("core: save mask count: %w", err)
		}
		for _, name := range names {
			if err := writeString(w, name); err != nil {
				return err
			}
			if _, err := lvl.Plan.Masks[name].WriteTo(w); err != nil {
				return err
			}
		}
	}
	for _, lvl := range rm.store.levels {
		for _, v := range []float64{lvl.Sparsity, lvl.Accuracy, lvl.LatencyMS, lvl.EnergyMJ} {
			if err := writeFloat64(w, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reads a deployment bundle into the given (architecture-matching)
// model and rebuilds the reversible wrapper, including the recovery store
// and all calibration data.
func Load(model *nn.Sequential, r io.Reader) (*ReversibleModel, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("core: load magic: %w", err)
	}
	if got := binary.LittleEndian.Uint32(magic[:]); got != bundleMagic {
		return nil, fmt.Errorf("core: bad bundle magic %#x", got)
	}
	return loadBody(model, r)
}

// LoadSelfContained reconstructs the model architecture, weights, level
// library, and recovery store from a stream written by SaveSelfContained.
func LoadSelfContained(name string, r io.Reader) (*ReversibleModel, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("core: load magic: %w", err)
	}
	if got := binary.LittleEndian.Uint32(magic[:]); got != bundleSelf {
		return nil, fmt.Errorf("core: bad self-contained bundle magic %#x", got)
	}
	model, err := nn.LoadArchitecture(name, r)
	if err != nil {
		return nil, fmt.Errorf("core: load architecture: %w", err)
	}
	return loadBody(model, r)
}

func loadBody(model *nn.Sequential, r io.Reader) (*ReversibleModel, error) {
	if err := model.LoadWeights(r); err != nil {
		return nil, fmt.Errorf("core: load weights: %w", err)
	}
	var n4 [4]byte
	if _, err := io.ReadFull(r, n4[:]); err != nil {
		return nil, fmt.Errorf("core: load level count: %w", err)
	}
	nLevels := int(binary.LittleEndian.Uint32(n4[:]))
	if nLevels < 0 || nLevels > 1024 {
		return nil, fmt.Errorf("core: implausible level count %d", nLevels)
	}
	plans := make([]*prune.Plan, nLevels)
	for i := range plans {
		method, err := readString(r)
		if err != nil {
			return nil, err
		}
		sparsity, err := readFloat64(r)
		if err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(r, n4[:]); err != nil {
			return nil, fmt.Errorf("core: load mask count: %w", err)
		}
		nMasks := int(binary.LittleEndian.Uint32(n4[:]))
		if nMasks < 0 || nMasks > 1<<16 {
			return nil, fmt.Errorf("core: implausible mask count %d", nMasks)
		}
		masks := make(map[string]*prune.Mask, nMasks)
		for j := 0; j < nMasks; j++ {
			name, err := readString(r)
			if err != nil {
				return nil, err
			}
			mask, err := prune.ReadMask(r)
			if err != nil {
				return nil, err
			}
			masks[name] = mask
		}
		plans[i] = &prune.Plan{Method: method, Sparsity: sparsity, Masks: masks}
	}
	rm, err := Build(model, plans)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild from bundle: %w", err)
	}
	for _, lvl := range rm.store.levels {
		vals := make([]float64, 4)
		for k := range vals {
			v, err := readFloat64(r)
			if err != nil {
				return nil, err
			}
			vals[k] = v
		}
		lvl.Sparsity, lvl.Accuracy, lvl.LatencyMS, lvl.EnergyMJ = vals[0], vals[1], vals[2], vals[3]
	}
	return rm, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("core: string %q too long", s[:32])
	}
	buf := make([]byte, 2+len(s))
	binary.LittleEndian.PutUint16(buf, uint16(len(s)))
	copy(buf[2:], s)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("core: write string: %w", err)
	}
	return nil
}

func readString(r io.Reader) (string, error) {
	var lb [2]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return "", fmt.Errorf("core: read string length: %w", err)
	}
	buf := make([]byte, binary.LittleEndian.Uint16(lb[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("core: read string: %w", err)
	}
	return string(buf), nil
}

func writeFloat64(w io.Writer, v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("core: write float: %w", err)
	}
	return nil
}

func readFloat64(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("core: read float: %w", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}
