package core

import (
	"testing"
	"time"

	"repro/internal/tensor"
)

// recordingObserver captures every ObserveTransition call.
type recordingObserver struct {
	from, to []int
	weights  []int64
	elapsed  []time.Duration
}

func (o *recordingObserver) ObserveTransition(from, to int, weights int64, elapsed time.Duration) {
	o.from = append(o.from, from)
	o.to = append(o.to, to)
	o.weights = append(o.weights, weights)
	o.elapsed = append(o.elapsed, elapsed)
}

func TestObserverSeesTransitions(t *testing.T) {
	// Pin the package clock so observed latencies are exact: the seam is
	// read once at entry and once at exit, one 5µs step apart.
	base := time.Unix(1_700_000_000, 0)
	now = func() time.Time {
		base = base.Add(5 * time.Microsecond)
		return base
	}
	t.Cleanup(func() { now = time.Now })

	rm, _ := buildRM(t, 31)
	obs := &recordingObserver{}
	rm.SetObserver(obs)

	if err := rm.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	if err := rm.ApplyLevel(2); err != nil { // no-op: must not be observed
		t.Fatal(err)
	}
	if err := rm.ApplyLevel(3); err != nil {
		t.Fatal(err)
	}
	if err := rm.RestoreFull(); err != nil {
		t.Fatal(err)
	}

	if len(obs.from) != 3 {
		t.Fatalf("observed %d transitions, want 3 (no-op must be silent)", len(obs.from))
	}
	wantFrom := []int{0, 2, 3}
	wantTo := []int{2, 3, 0}
	for i := range wantFrom {
		if obs.from[i] != wantFrom[i] || obs.to[i] != wantTo[i] {
			t.Errorf("transition %d = %d→%d, want %d→%d",
				i, obs.from[i], obs.to[i], wantFrom[i], wantTo[i])
		}
		// Observed weight counts must match the analytic cost model.
		if want := rm.WeightsChanged(wantFrom[i], wantTo[i]); obs.weights[i] != want {
			t.Errorf("transition %d moved %d weights, want WeightsChanged=%d",
				i, obs.weights[i], want)
		}
		if obs.elapsed[i] != 5*time.Microsecond {
			t.Errorf("transition %d elapsed = %v, want 5µs", i, obs.elapsed[i])
		}
	}
	// The emergency restore must move the sum of all per-level deltas.
	if obs.weights[2] != rm.WeightsChanged(3, 0) {
		t.Errorf("restore moved %d, want %d", obs.weights[2], rm.WeightsChanged(3, 0))
	}

	// Removing the observer silences the hook again.
	rm.SetObserver(nil)
	if err := rm.ApplyLevel(1); err != nil {
		t.Fatal(err)
	}
	if len(obs.from) != 3 {
		t.Error("transition observed after observer removed")
	}
}

// paramRecorder additionally captures every ObserveParamTransition call.
type paramRecorder struct {
	recordingObserver
	params  []string
	weights []int64
	froms   []int
	tos     []int
	elapsed []time.Duration
}

func (o *paramRecorder) ObserveParamTransition(from, to int, param string, weights int64, elapsed time.Duration) {
	o.froms = append(o.froms, from)
	o.tos = append(o.tos, to)
	o.params = append(o.params, param)
	o.weights = append(o.weights, weights)
	o.elapsed = append(o.elapsed, elapsed)
}

// TestParamObserverSeesPerDeltaTiming exercises the optional
// ParamTransitionObserver extension: every delta application is reported
// with its parameter, the per-parameter weight counts sum to the
// aggregate transition cost, and the per-delta latencies are measured
// around just the writes.
func TestParamObserverSeesPerDeltaTiming(t *testing.T) {
	// Pin the clock: every read advances 5µs, so each delta (one read
	// before, one after) observes exactly 5µs.
	base := time.Unix(1_700_000_000, 0)
	now = func() time.Time {
		base = base.Add(5 * time.Microsecond)
		return base
	}
	t.Cleanup(func() { now = time.Now })

	rm, _ := buildRM(t, 33)
	obs := &paramRecorder{}
	rm.SetObserver(obs)

	if err := rm.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	if err := rm.RestoreFull(); err != nil {
		t.Fatal(err)
	}

	if len(obs.params) == 0 {
		t.Fatal("no per-parameter observations")
	}
	var perParam int64
	for i, p := range obs.params {
		if p == "" {
			t.Error("empty parameter name observed")
		}
		perParam += obs.weights[i]
		if obs.elapsed[i] != 5*time.Microsecond {
			t.Errorf("delta %d (%s) elapsed = %v, want 5µs", i, p, obs.elapsed[i])
		}
	}
	// Down and back up: per-parameter weights must sum to both aggregate
	// transitions' costs.
	want := rm.WeightsChanged(0, 2) + rm.WeightsChanged(2, 0)
	if perParam != want {
		t.Errorf("per-parameter weights sum = %d, want %d", perParam, want)
	}
	// Endpoints are the overall transition's, not the intermediate level
	// steps: the restore deltas all report 2→0.
	if obs.froms[len(obs.froms)-1] != 2 || obs.tos[len(obs.tos)-1] != 0 {
		t.Errorf("last delta endpoints = %d→%d, want 2→0",
			obs.froms[len(obs.froms)-1], obs.tos[len(obs.tos)-1])
	}
	// The aggregate ObserveTransition hook still fires alongside.
	if len(obs.from) != 2 {
		t.Errorf("aggregate transitions observed = %d, want 2", len(obs.from))
	}
}

// TestApplyLevelNoObserverZeroAllocs proves the disabled-observer hot path
// allocates nothing: level transitions without an observer must not touch
// the clock or the heap beyond the transition writes themselves (which
// mutate weights in place).
func TestApplyLevelNoObserverZeroAllocs(t *testing.T) {
	rm, _ := buildRM(t, 32)
	allocs := testing.AllocsPerRun(100, func() {
		if err := rm.ApplyLevel(3); err != nil {
			t.Fatal(err)
		}
		if err := rm.RestoreFull(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ApplyLevel without observer allocates %v times per run, want 0", allocs)
	}
}

// TestLongRandomWalkMatchesFreshBuild is the deep reversibility property:
// a 500-step seeded any-to-any random walk over ApplyLevel must leave the
// live weights bit-identical to a freshly built model taken straight to
// the walk's final level, and the accumulated stats must equal the sum of
// the analytic per-step costs.
func TestLongRandomWalkMatchesFreshBuild(t *testing.T) {
	const steps = 500
	sparsities := []float64{0.2, 0.4, 0.6, 0.8}
	for _, seed := range []int64{1, 7, 99} {
		rm, m := buildRM(t, 41, sparsities...)
		rm.ResetStats()
		rng := tensor.NewRNG(seed)
		var wantZeroed, wantRestored int64
		for k := 0; k < steps; k++ {
			target := rng.Intn(rm.NumLevels())
			fromLvl := rm.Current()
			cost := rm.WeightsChanged(fromLvl, target)
			if err := rm.ApplyLevel(target); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, k, err)
			}
			if target > fromLvl {
				wantZeroed += cost
			} else if target < fromLvl {
				wantRestored += cost
			}
		}
		final := rm.Current()

		// Weights must be bit-identical to a fresh model built from the
		// same RNG seed and taken directly to the final level.
		fresh, fm := buildRM(t, 41, sparsities...)
		if err := fresh.ApplyLevel(final); err != nil {
			t.Fatal(err)
		}
		for _, p := range m.PrunableParams() {
			if !tensor.Equal(p.Value, fm.Param(p.Name).Value) {
				t.Errorf("seed %d: param %s diverged from fresh build at L%d",
					seed, p.Name, final)
			}
		}

		// Stats invariant: accumulated zeroed/restored totals equal the
		// sum of per-step analytic costs.
		st := rm.Stats()
		if st.WeightsZeroed != wantZeroed {
			t.Errorf("seed %d: WeightsZeroed = %d, want %d", seed, st.WeightsZeroed, wantZeroed)
		}
		if st.WeightsRestored != wantRestored {
			t.Errorf("seed %d: WeightsRestored = %d, want %d", seed, st.WeightsRestored, wantRestored)
		}

		// And the walk remains fully reversible after 500 steps.
		if err := rm.RestoreFull(); err != nil {
			t.Fatal(err)
		}
		if err := rm.VerifyDense(); err != nil {
			t.Errorf("seed %d: VerifyDense after walk: %v", seed, err)
		}
	}
}
