// Package core implements the paper's primary contribution: reversible
// runtime neural-network pruning ("back to the future").
//
// A ReversibleModel wraps a trained network together with a library of
// nested pruning levels L0 (dense) … Ln (sparsest) and a compact recovery
// store. Deepening to a sparser level zeroes exactly the weights that level
// additionally prunes; reverting to a denser level writes the displaced
// original values back from the store. Both directions cost O(#changed
// weights) float32 copies — microseconds for the models in this repository —
// instead of the seconds (full checkpoint reload) or minutes-to-hours
// (retraining) that conventional irreversible pruning needs to recover
// accuracy.
//
// Because the levels are nested (each level's pruned set contains the
// previous one's), the store holds every displaced weight exactly once: the
// total store size equals the number of weights pruned at the deepest
// level, independent of how many levels exist. This is the memory-overhead
// result reproduced by experiment T1.
//
// The package is deliberately independent of *why* levels are switched;
// the runtime policy lives in internal/governor. Transitions are
// observable through the TransitionObserver seam (one callback per
// completed level change, with weight count and wall-clock latency) and
// its optional ParamTransitionObserver extension (one callback per
// parameter per level step, for per-layer latency attribution); with no
// observer installed the hot path stays allocation-free.
package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/nn"
	"repro/internal/prune"
)

// Level is one entry of the pruning-level library, with the calibration
// data the runtime governor uses for decision making.
type Level struct {
	// ID is the level index: 0 is dense, higher is sparser.
	ID int
	// Name is "L0", "L1", ….
	Name string
	// Plan holds the masks defining this level; nil for the dense level.
	Plan *prune.Plan
	// Sparsity is the achieved weight sparsity over prunable parameters.
	Sparsity float64
	// Accuracy is the calibrated task accuracy at this level, filled by
	// Calibrate. The governor treats it as this level's quality contract.
	Accuracy float64
	// LatencyMS is the per-inference latency estimate in milliseconds,
	// filled by SetCost.
	LatencyMS float64
	// EnergyMJ is the per-inference energy estimate in millijoules.
	EnergyMJ float64
}

// delta records, for one parameter, the weights additionally pruned when
// deepening into a level, along with their displaced dense values. Values
// are held either exactly (float32) or half-precision compressed
// (bfloat16-style, high 16 bits of the float32 pattern), trading bit-exact
// reversal for half the store memory. Deltas live in the shared
// CheckpointStore; the per-view live-buffer slices they are applied to are
// cached view-side (ReversibleModel.bufs), index-aligned with these.
type delta struct {
	param    string
	indices  []int32
	values   []float32 // exact store (nil when compressed)
	values16 []uint16  // compressed store (nil when exact)
}

// value returns the stored displaced weight j of the delta.
func (d *delta) value(j int) float32 {
	if d.values != nil {
		return d.values[j]
	}
	return math.Float32frombits(uint32(d.values16[j]) << 16)
}

// capture stores the displaced weight j.
func (d *delta) capture(j int, v float32) {
	if d.values != nil {
		d.values[j] = v
		return
	}
	d.values16[j] = uint16(math.Float32bits(v) >> 16)
}

// count returns the number of displaced weights held.
func (d *delta) count() int {
	if d.values != nil {
		return len(d.values)
	}
	return len(d.values16)
}

// bytesPerValue returns the storage cost of one displaced value.
func (d *delta) bytesPerValue() int64 {
	if d.values != nil {
		return 4
	}
	return 2
}

// TransitionObserver receives a notification after every completed level
// transition. Implementations must be cheap and must not call back into the
// model (ApplyLevel is not reentrant); internal/telemetry.Hooks satisfies
// this interface.
type TransitionObserver interface {
	// ObserveTransition reports one transition: the level moved from and
	// to, the number of individual weights written, and the wall-clock time
	// the weight copies took. to == 0 is the safety-critical RestoreFull
	// path.
	ObserveTransition(from, to int, weights int64, elapsed time.Duration)
}

// ParamTransitionObserver is an optional extension of TransitionObserver.
// When the installed observer also implements it, ApplyLevel times each
// delta application individually and reports it here — one call per
// (parameter, level step) pair, so a parameter touched by a multi-level
// jump is reported once per step. The extra cost is two clock reads per
// delta, paid only when the extension is present;
// internal/telemetry.Hooks implements it to feed the per-layer
// rpn_layer_transition_latency_us histograms.
type ParamTransitionObserver interface {
	TransitionObserver
	// ObserveParamTransition reports the weights written into one
	// parameter during one level step of an ApplyLevel(from→to)
	// transition, with the wall-clock time of just those writes.
	ObserveParamTransition(from, to int, param string, weights int64, elapsed time.Duration)
}

// TransitionStats counts runtime level-transition work.
type TransitionStats struct {
	// Transitions is the number of completed ApplyLevel calls that changed
	// level.
	Transitions int
	// Deepen and Revert split Transitions by direction.
	Deepen, Revert int
	// WeightsZeroed and WeightsRestored count individual weight writes.
	WeightsZeroed, WeightsRestored int64
}

// ReversibleModel is a live network viewing a shared CheckpointStore: the
// store holds the sealed dense snapshot, the level library, and every
// level's displaced values exactly once; the view holds the current level,
// transition statistics, and — copy-on-write — only the weight buffers
// transitions have actually written. Build returns the first view of a
// fresh store; CheckpointStore.NewView clones further instances in O(1)
// weight memory. It is not safe for concurrent use; a perception pipeline
// owns one.
type ReversibleModel struct {
	model    *nn.Sequential
	store    *CheckpointStore
	current  int
	stats    TransitionStats
	observer TransitionObserver // nil: observation disabled (zero cost)

	// Copy-on-write state. aliased marks prunable parameters still reading
	// the store's snapshot buffer; bufs caches the live buffer of every
	// delta (index-aligned with store.deltas) so the transition hot loop
	// stays allocation- and lookup-free; privateBytes counts materialized
	// and copied buffers.
	aliased      map[string]bool
	bufs         [][][]float32
	privateBytes int64
	released     bool
}

// BuildOption configures Build.
type BuildOption func(*buildConfig)

type buildConfig struct {
	halfPrecision bool
}

// WithHalfPrecisionStore halves the recovery store's value memory by
// keeping displaced weights as bfloat16 (upper 16 bits of the float32
// pattern). Restoration is then approximate — typically indistinguishable
// in task accuracy, but no longer bit-exact, so VerifyDense is unavailable
// on such models. Experiment T1 quantifies the memory/fidelity tradeoff.
func WithHalfPrecisionStore() BuildOption {
	return func(c *buildConfig) { c.halfPrecision = true }
}

// Build wraps model with the given nested pruning plans. The model must be
// in its dense (unpruned) state: the plans' masks are validated for
// nesting, the displaced weights are captured into the recovery store, and
// the model is left at L0.
//
// plans[i] must nest into plans[i+1] (every weight pruned at level i+1 is
// also pruned at level i+2…); prune.Method implementations produce such
// families via PlanNested.
func Build(model *nn.Sequential, plans []*prune.Plan, opts ...BuildOption) (*ReversibleModel, error) {
	var cfg buildConfig
	for _, o := range opts {
		o(&cfg)
	}
	if model == nil {
		return nil, fmt.Errorf("core: Build with nil model")
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("core: Build with no pruning plans")
	}
	for i := 0; i < len(plans)-1; i++ {
		if !plans[i].Nests(plans[i+1]) {
			return nil, fmt.Errorf("core: plan %d (sparsity %.3f) does not nest into plan %d (sparsity %.3f)",
				i, plans[i].Sparsity, i+1, plans[i+1].Sparsity)
		}
	}
	for i, p := range plans {
		for name, mask := range p.Masks {
			param := model.Param(name)
			if param == nil {
				return nil, fmt.Errorf("core: plan %d references unknown parameter %q", i, name)
			}
			if param.Value.Len() != mask.Len() {
				return nil, fmt.Errorf("core: plan %d mask for %q has %d bits, parameter has %d weights",
					i, name, mask.Len(), param.Value.Len())
			}
		}
	}

	st := &CheckpointStore{hash0: hashPrunable(model), lossy: cfg.halfPrecision}
	st.levels = append(st.levels, &Level{ID: 0, Name: "L0"})
	st.deltas = append(st.deltas, nil) // deltas[0] unused

	prevMasks := map[string]*prune.Mask{}
	for i, p := range plans {
		lvl := &Level{
			ID:       i + 1,
			Name:     fmt.Sprintf("L%d", i+1),
			Plan:     p,
			Sparsity: p.AchievedSparsity(model),
		}
		var ds []delta
		for _, name := range sortedMaskNames(p.Masks) {
			mask := p.Masks[name]
			prev := prevMasks[name]
			if prev == nil {
				prev = prune.NewMask(mask.Len())
			}
			idx := prev.Diff(mask)
			if len(idx) == 0 {
				continue
			}
			d := delta{param: name, indices: make([]int32, len(idx))}
			if cfg.halfPrecision {
				d.values16 = make([]uint16, len(idx))
			} else {
				d.values = make([]float32, len(idx))
			}
			w := model.Param(name).Value.Data()
			for j, k := range idx {
				d.indices[j] = int32(k)
				d.capture(j, w[k])
			}
			ds = append(ds, d)
		}
		st.deltas = append(st.deltas, ds)
		st.levels = append(st.levels, lvl)
		for name, mask := range p.Masks {
			prevMasks[name] = mask
		}
	}
	// Seal the dense snapshot: the first view's live buffers ARE the
	// snapshot (zero copies at Build). Clones alias these copy-on-write;
	// the first view's own aliased flags make it materialize private
	// buffers before its transitions write, exactly like any clone.
	for _, p := range model.Params() {
		st.dense = append(st.dense, denseParam{name: p.Name, data: p.Value.Data(), prunable: p.Prunable})
	}
	st.ckpt = st.fingerprint()
	st.seal()

	rm := &ReversibleModel{model: model, store: st, aliased: map[string]bool{}}
	for _, p := range model.PrunableParams() {
		rm.aliased[p.Name] = true
	}
	rm.rebindAll()
	st.Acquire()
	return rm, nil
}

// fingerprint folds the dense weight hash with every level's delta layout
// (parameter names and pruned indices, in application order) into one
// FNV-64a value. Two models agree exactly at every level iff their dense
// weights and nested plans agree, which is what this fingerprint proxies.
func (s *CheckpointStore) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(s.hash0)
	buf[1] = byte(s.hash0 >> 8)
	buf[2] = byte(s.hash0 >> 16)
	buf[3] = byte(s.hash0 >> 24)
	buf[4] = byte(s.hash0 >> 32)
	buf[5] = byte(s.hash0 >> 40)
	buf[6] = byte(s.hash0 >> 48)
	buf[7] = byte(s.hash0 >> 56)
	h.Write(buf[:])
	for l := 1; l < len(s.deltas); l++ {
		for di := range s.deltas[l] {
			d := &s.deltas[l][di]
			h.Write([]byte(d.param))
			h.Write([]byte{0})
			for _, k := range d.indices {
				buf[0] = byte(k)
				buf[1] = byte(k >> 8)
				buf[2] = byte(k >> 16)
				buf[3] = byte(k >> 24)
				h.Write(buf[:4])
			}
		}
	}
	return h.Sum64()
}

// CheckpointID returns a stable fingerprint of the model's provenance: the
// dense prunable weights folded with the full nested-plan delta layout.
// Instances cloned from the same trained checkpoint with the same plan
// family share a CheckpointID and therefore hold bit-identical weights at
// every prune level — the precondition the fleet batch planner requires
// before fusing their frames into one batched forward pass. The value is
// computed once when the store is sealed (Build, RefreshStore) and shared
// by every view, so neither reading it nor cloning an instance re-hashes
// the weights.
func (rm *ReversibleModel) CheckpointID() uint64 { return rm.store.ckpt }

// Model returns the live network. Its weights reflect the current level.
func (rm *ReversibleModel) Model() *nn.Sequential { return rm.model }

// NumLevels returns the library size including the dense level L0.
func (rm *ReversibleModel) NumLevels() int { return len(rm.store.levels) }

// Current returns the active level index.
func (rm *ReversibleModel) Current() int { return rm.current }

// Level returns the metadata of level i.
func (rm *ReversibleModel) Level(i int) *Level {
	if i < 0 || i >= len(rm.store.levels) {
		failf("core: level %d out of range [0,%d)", i, len(rm.store.levels))
	}
	return rm.store.levels[i]
}

// Levels returns the level metadata slice (shared across every view of the
// store; do not mutate entries' identity fields).
func (rm *ReversibleModel) Levels() []*Level { return rm.store.levels }

// SetObserver installs (or, with nil, removes) the transition observer.
// The hook is nil-safe by construction: with no observer, ApplyLevel takes
// no clock readings and performs no extra allocations. SetObserver is not
// synchronized with ApplyLevel; install the observer before the model is
// shared (perception.Concurrent serializes the callers afterwards).
// An observer that also implements StoreObserver additionally receives
// checksum-verification and residency reports, starting with the view's
// current residency at install time.
func (rm *ReversibleModel) SetObserver(o TransitionObserver) {
	rm.observer = o
	rm.reportResidency()
}

// Stats returns a copy of the accumulated transition statistics.
func (rm *ReversibleModel) Stats() TransitionStats { return rm.stats }

// ResetStats zeroes the transition statistics.
func (rm *ReversibleModel) ResetStats() { rm.stats = TransitionStats{} }

// ApplyLevel transitions the live model to the target level, deepening
// (zeroing newly pruned weights) or reverting (restoring displaced values)
// as needed. The cost is proportional to the number of weights that differ
// between the current and target levels, plus — on revert paths — one
// checksum pass over each crossed level's recovery data: every restore,
// including the emergency ApplyLevel(0), verifies the displaced values it
// is about to write and refuses the transition (weights and level
// untouched, error wrapping ErrStoreCorrupt) if the store is corrupt.
// The first transition that writes a still-aliased parameter materializes
// a private copy-on-write buffer for it. ApplyLevel is a no-op for the
// current level.
func (rm *ReversibleModel) ApplyLevel(target int) error {
	if rm.released {
		return fmt.Errorf("core: ApplyLevel(%d) on a released view", target)
	}
	st := rm.store
	if target < 0 || target >= len(st.levels) {
		return fmt.Errorf("core: level %d out of range [0,%d)", target, len(st.levels))
	}
	if target == rm.current {
		return nil
	}
	so, _ := rm.observer.(StoreObserver)
	if target < rm.current {
		// Verify every level about to be restored before writing anything:
		// a failed transition must leave the weights exactly as they were.
		for l := rm.current; l > target; l-- {
			if err := st.VerifyLevel(l); err != nil {
				if so != nil {
					so.ObserveStoreCheck(false)
				}
				return fmt.Errorf("core: refusing restore %d→%d: %w", rm.current, target, err)
			}
			if so != nil {
				so.ObserveStoreCheck(true)
			}
		}
	}
	from := rm.current
	var t0 time.Time
	var po ParamTransitionObserver
	if rm.observer != nil {
		t0 = now()
		po, _ = rm.observer.(ParamTransitionObserver)
	}
	var moved int64
	if target > rm.current {
		for l := rm.current + 1; l <= target; l++ {
			for di := range st.deltas[l] {
				d := &st.deltas[l][di]
				if rm.aliased[d.param] {
					rm.materialize(d.param)
				}
				var pt time.Time
				if po != nil {
					pt = now()
				}
				w := rm.bufs[l][di]
				for _, k := range d.indices {
					w[k] = 0
				}
				moved += int64(len(d.indices))
				if po != nil {
					po.ObserveParamTransition(from, target, d.param, int64(len(d.indices)), now().Sub(pt))
				}
			}
		}
		rm.stats.WeightsZeroed += moved
		rm.stats.Deepen++
	} else {
		for l := rm.current; l > target; l-- {
			for di := range st.deltas[l] {
				d := &st.deltas[l][di]
				if rm.aliased[d.param] {
					rm.materialize(d.param)
				}
				var pt time.Time
				if po != nil {
					pt = now()
				}
				w := rm.bufs[l][di]
				for j, k := range d.indices {
					w[k] = d.value(j)
				}
				moved += int64(len(d.indices))
				if po != nil {
					po.ObserveParamTransition(from, target, d.param, int64(len(d.indices)), now().Sub(pt))
				}
			}
		}
		rm.stats.WeightsRestored += moved
		rm.stats.Revert++
	}
	rm.stats.Transitions++
	rm.current = target
	if rm.observer != nil {
		rm.observer.ObserveTransition(from, target, moved, now().Sub(t0))
	}
	return nil
}

// RestoreFull is the safety-critical fast path: revert straight to the
// dense level L0.
func (rm *ReversibleModel) RestoreFull() error { return rm.ApplyLevel(0) }

// WeightsChanged returns how many individual weights an ApplyLevel(from→to)
// transition writes — the analytic transition-cost model behind experiment
// T5.
func (rm *ReversibleModel) WeightsChanged(from, to int) int64 {
	st := rm.store
	if from < 0 || from >= len(st.levels) || to < 0 || to >= len(st.levels) {
		failf("core: WeightsChanged(%d,%d) out of range [0,%d)", from, to, len(st.levels))
	}
	if from > to {
		from, to = to, from
	}
	var n int64
	for l := from + 1; l <= to; l++ {
		for _, d := range st.deltas[l] {
			n += int64(len(d.indices))
		}
	}
	return n
}

// StoreBytes returns the memory footprint of the shared recovery store:
// displaced values plus their indices. This is the overhead reversibility
// costs over an ordinary pruned deployment (experiment T1 compares it to
// per-level full checkpoints); with views it is paid once per store, not
// per instance.
func (rm *ReversibleModel) StoreBytes() int64 { return rm.store.StoreBytes() }

// StoredWeights returns the total number of displaced weights held by the
// recovery store.
func (rm *ReversibleModel) StoredWeights() int64 { return rm.store.StoredWeights() }

// Calibrate fills each level's Accuracy by applying it and running eval,
// then returns the model to the level that was active. Calibration runs
// offline, before deployment.
func (rm *ReversibleModel) Calibrate(eval func(m *nn.Sequential) float64) error {
	if eval == nil {
		return fmt.Errorf("core: Calibrate with nil evaluator")
	}
	prev := rm.current
	for i := range rm.store.levels {
		if err := rm.ApplyLevel(i); err != nil {
			return err
		}
		rm.store.levels[i].Accuracy = eval(rm.model)
	}
	return rm.ApplyLevel(prev)
}

// SetCost records the platform-model cost estimates for level i.
func (rm *ReversibleModel) SetCost(i int, latencyMS, energyMJ float64) {
	lvl := rm.Level(i)
	lvl.LatencyMS = latencyMS
	lvl.EnergyMJ = energyMJ
}

// VerifyDense checks, at L0, that the live prunable weights hash to the
// value captured at Build time — the end-to-end reversibility integrity
// check. Calling it at any other level is an error.
func (rm *ReversibleModel) VerifyDense() error {
	if rm.store.lossy {
		return fmt.Errorf("core: VerifyDense unavailable with a half-precision store (restoration is approximate)")
	}
	if rm.current != 0 {
		return fmt.Errorf("core: VerifyDense at level %d; restore to L0 first", rm.current)
	}
	if h := hashPrunable(rm.model); h != rm.store.hash0 {
		return fmt.Errorf("core: dense weight hash mismatch: %#x != %#x (weights modified outside the level library?)", h, rm.store.hash0)
	}
	return nil
}

// CheckInvariants validates the live weights against the current level's
// masks: every pruned position must be exactly zero. It is O(total
// weights) and intended for tests and debugging.
func (rm *ReversibleModel) CheckInvariants() error {
	lvl := rm.store.levels[rm.current]
	if lvl.Plan == nil {
		return nil
	}
	for name, mask := range lvl.Plan.Masks {
		w := rm.model.Param(name).Value.Data()
		for i := range w {
			if !mask.Keep(i) && w[i] != 0 { //lint:allow(floateq) pruned weights are scrubbed to bit-exact zeros
				return fmt.Errorf("core: level %s: %s[%d] = %v, want 0", lvl.Name, name, i, w[i])
			}
		}
	}
	return nil
}

// Scrub re-enforces the current level's masks on the live weights: any
// pruned position that is no longer exactly zero (memory corruption, a
// stray write) is forced back to zero. It returns the number of weights
// repaired. Scrub is the cheap periodic integrity action a deployed system
// runs between the full VerifyDense audits; it cannot repair kept weights
// (those need the dense checkpoint), but at deep levels the majority of
// weight memory is store-covered.
func (rm *ReversibleModel) Scrub() int64 {
	lvl := rm.store.levels[rm.current]
	if lvl.Plan == nil {
		return 0
	}
	var repaired int64
	for name, mask := range lvl.Plan.Masks {
		w := rm.model.Param(name).Value.Data()
		for i := range w {
			if !mask.Keep(i) && w[i] != 0 { //lint:allow(floateq) pruned weights are scrubbed to bit-exact zeros
				w[i] = 0
				repaired++
			}
		}
	}
	return repaired
}

// RefreshStore re-seals the shared store from the view's current dense
// weights: the snapshot is rewritten, displaced values recaptured, and the
// fingerprint and integrity checksums recomputed. Call it after offline
// fine-tuning at L0 invalidates the captured values. The model must be at
// L0, and the view must be the store's sole owner (refcount 1): rewriting
// a snapshot other views alias would change their weights underneath them.
func (rm *ReversibleModel) RefreshStore() error {
	if rm.current != 0 {
		return fmt.Errorf("core: RefreshStore at level %d; restore to L0 first", rm.current)
	}
	st := rm.store
	if n := st.Refs(); n != 1 {
		return fmt.Errorf("core: RefreshStore with %d views attached; the store must be solely owned", n)
	}
	// Fold the view's materialized buffers back into the snapshot and
	// re-alias, so the refreshed store is again shared-from-scratch.
	for i := range st.dense {
		dp := &st.dense[i]
		if !dp.prunable || rm.aliased[dp.name] {
			continue
		}
		p := rm.model.Param(dp.name)
		copy(dp.data, p.Value.Data())
		rm.privateBytes -= int64(len(dp.data)) * 4
		p.Value.SetData(dp.data)
		rm.aliased[dp.name] = true
		rm.rebind(dp.name, dp.data)
	}
	for l := 1; l < len(st.deltas); l++ {
		for di := range st.deltas[l] {
			d := &st.deltas[l][di]
			w := rm.bufs[l][di]
			for j, k := range d.indices {
				d.capture(j, w[k])
			}
		}
	}
	st.hash0 = hashPrunable(rm.model)
	st.ckpt = st.fingerprint()
	st.seal()
	return nil
}

// hashPrunable hashes the prunable weights with FNV-64a, in parameter
// order.
func hashPrunable(model *nn.Sequential) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, p := range model.PrunableParams() {
		for _, v := range p.Value.Data() {
			bits := math.Float32bits(v)
			buf[0] = byte(bits)
			buf[1] = byte(bits >> 8)
			buf[2] = byte(bits >> 16)
			buf[3] = byte(bits >> 24)
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func sortedMaskNames(masks map[string]*prune.Mask) []string {
	names := make([]string, 0, len(masks))
	for name := range masks {
		names = append(names, name)
	}
	// Insertion sort: the map is tiny (a handful of parameters per plan).
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
