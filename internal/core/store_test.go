package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// newView clones a fresh architecture-identical view from rm's store.
func newView(t *testing.T, rm *ReversibleModel, seed int64) *ReversibleModel {
	t.Helper()
	view, err := rm.Store().NewView(buildModel(seed))
	if err != nil {
		t.Fatal(err)
	}
	return view
}

func TestNewViewSharesWeightsCopyOnWrite(t *testing.T) {
	rm, m := buildRM(t, 1)
	view := newView(t, rm, 99) // different init seed: snapshot must win
	for _, p := range m.PrunableParams() {
		vp := view.Model().Param(p.Name)
		if !tensor.SharesData(p.Value, vp.Value) {
			t.Fatalf("clone %q must alias the dense snapshot", p.Name)
		}
	}
	if got := view.PrivateBytes(); got >= rm.Store().SharedBytes()/4 {
		t.Fatalf("fresh view PrivateBytes = %d, want O(biases) only", got)
	}

	// Deepening the clone must not disturb the original (copy-on-write).
	before := snapshotAll(m)
	if err := view.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	compareSnapshots(t, m, before)
	for _, p := range m.PrunableParams() {
		vp := view.Model().Param(p.Name)
		if tensor.SharesData(p.Value, vp.Value) {
			t.Fatalf("%q still aliased after the clone deepened through it", p.Name)
		}
	}
	if view.PrivateBytes() == 0 {
		t.Fatal("PrivateBytes must grow after materialization")
	}

	// And the clone restores bit-exactly from the shared store.
	if err := view.ApplyLevel(0); err != nil {
		t.Fatal(err)
	}
	if err := view.VerifyDense(); err != nil {
		t.Fatal(err)
	}
}

func TestViewMatchesOriginalAtEveryLevel(t *testing.T) {
	rm, m := buildRM(t, 7)
	view := newView(t, rm, 8)
	for l := 0; l < rm.NumLevels(); l++ {
		if err := rm.ApplyLevel(l); err != nil {
			t.Fatal(err)
		}
		if err := view.ApplyLevel(l); err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Params() {
			vp := view.Model().Param(p.Name)
			if !tensor.Equal(p.Value, vp.Value) {
				t.Fatalf("level %d: %q differs between original and view", l, p.Name)
			}
		}
	}
	if rm.CheckpointID() != view.CheckpointID() {
		t.Fatal("views of one store must share its CheckpointID")
	}
	if err := rm.ApplyLevel(0); err != nil {
		t.Fatal(err)
	}
}

func TestNewViewRejectsMismatchedArchitecture(t *testing.T) {
	rm, _ := buildRM(t, 1)
	rng := tensor.NewRNG(3)
	other := nn.NewSequential("m",
		nn.NewDense("fc1", 12, 24, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("fc2", 24, 16, rng),
	)
	if _, err := rm.Store().NewView(other); err == nil {
		t.Fatal("NewView must reject an architecture with missing parameters")
	}
	if _, err := rm.Store().NewView(nil); err == nil {
		t.Fatal("NewView must reject a nil model")
	}
}

func TestRefcountLifecycle(t *testing.T) {
	rm, _ := buildRM(t, 1)
	st := rm.Store()
	if got := st.Refs(); got != 1 {
		t.Fatalf("Refs after Build = %d, want 1", got)
	}
	v1 := newView(t, rm, 2)
	v2 := newView(t, rm, 3)
	if got := st.Refs(); got != 3 {
		t.Fatalf("Refs after two clones = %d, want 3", got)
	}
	if err := v1.Release(); err != nil {
		t.Fatal(err)
	}
	if err := v1.Release(); err == nil {
		t.Fatal("double Release must be an error")
	}
	if !v1.Released() {
		t.Fatal("Released() must report true after Release")
	}
	if err := v1.ApplyLevel(1); err == nil {
		t.Fatal("ApplyLevel on a released view must fail")
	}
	if err := v2.Release(); err != nil {
		t.Fatal(err)
	}
	if err := rm.Release(); err != nil {
		t.Fatal(err)
	}
	if got := st.Refs(); got != 0 {
		t.Fatalf("Refs after releasing every view = %d, want 0", got)
	}
	if err := st.Release(); err == nil {
		t.Fatal("over-releasing the store must be an error")
	}
}

func TestChecksumTripsOnRestore(t *testing.T) {
	rm, _ := buildRM(t, 5)
	if err := rm.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	if n := rm.CorruptDisplaced(4, 1234); n != 4 {
		t.Fatalf("CorruptDisplaced flipped %d bits, want 4", n)
	}
	before := snapshotAll(rm.Model())
	err := rm.ApplyLevel(0)
	if err == nil {
		t.Fatal("restore over a corrupted store must fail")
	}
	if !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("error %v must wrap ErrStoreCorrupt", err)
	}
	// The refused transition must not have touched weights or level.
	compareSnapshots(t, rm.Model(), before)
	if rm.Current() != 2 {
		t.Fatalf("Current = %d after refused restore, want 2", rm.Current())
	}
	// Deepening does not read displaced values and stays available.
	if err := rm.ApplyLevel(3); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumTripsOnHalfPrecisionStore(t *testing.T) {
	m := buildModel(11)
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, []float64{0.4, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Build(m, plans, WithHalfPrecisionStore())
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	if n := rm.CorruptDisplaced(1, 77); n != 1 {
		t.Fatalf("flipped %d, want 1", n)
	}
	if err := rm.ApplyLevel(0); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("lossy store corruption must trip the checksum, got %v", err)
	}
}

func TestVerifyCleanStore(t *testing.T) {
	rm, _ := buildRM(t, 1)
	if err := rm.Store().Verify(); err != nil {
		t.Fatal(err)
	}
	if err := rm.Store().VerifyLevel(0); err == nil {
		t.Fatal("VerifyLevel(0) must be a usage error (dense level has no deltas)")
	}
	if err := rm.Store().VerifyLevel(99); err == nil {
		t.Fatal("VerifyLevel out of range must error")
	}
}

func TestPrivatizeIsolatesInjectedDamage(t *testing.T) {
	rm, m := buildRM(t, 9)
	view := newView(t, rm, 10)
	view.Privatize()
	for _, p := range m.PrunableParams() {
		vp := view.Model().Param(p.Name)
		if tensor.SharesData(p.Value, vp.Value) {
			t.Fatalf("%q still aliased after Privatize", p.Name)
		}
	}
	// A stray write into the privatized view must not reach the original.
	before := snapshotAll(m)
	view.Model().PrunableParams()[0].Value.Data()[0] = 42
	compareSnapshots(t, m, before)
}

func TestRefreshStoreRequiresSoleOwnership(t *testing.T) {
	rm, _ := buildRM(t, 1)
	view := newView(t, rm, 2)
	if err := rm.RefreshStore(); err == nil {
		t.Fatal("RefreshStore with two attached views must fail")
	}
	if err := view.Release(); err != nil {
		t.Fatal(err)
	}
	if err := rm.RefreshStore(); err != nil {
		t.Fatalf("RefreshStore as sole owner: %v", err)
	}
	if err := rm.Store().Verify(); err != nil {
		t.Fatalf("checksums stale after RefreshStore: %v", err)
	}
}

func TestRefreshStoreResealsMaterializedView(t *testing.T) {
	rm, m := buildRM(t, 13)
	// Materialize everything, fine-tune a kept weight, and refresh.
	if err := rm.ApplyLevel(3); err != nil {
		t.Fatal(err)
	}
	if err := rm.ApplyLevel(0); err != nil {
		t.Fatal(err)
	}
	w := m.PrunableParams()[0].Value.Data()
	w[firstKeptIndex(rm)] += 0.25
	if err := rm.RefreshStore(); err != nil {
		t.Fatal(err)
	}
	if rm.PrivateBytes() != 0 {
		t.Fatalf("PrivateBytes = %d after RefreshStore, want 0 (re-aliased)", rm.PrivateBytes())
	}
	if err := rm.VerifyDense(); err != nil {
		t.Fatal(err)
	}
	// Clones cut after the refresh see the fine-tuned snapshot.
	view := newView(t, rm, 14)
	if !tensor.Equal(m.PrunableParams()[0].Value, view.Model().PrunableParams()[0].Value) {
		t.Fatal("post-refresh clone must read the refreshed snapshot")
	}
}

// firstKeptIndex returns an index of prunable parameter 0 kept at the
// deepest level (so editing it exercises the snapshot, not the deltas).
func firstKeptIndex(rm *ReversibleModel) int {
	p := rm.Model().PrunableParams()[0]
	deepest := rm.Level(rm.NumLevels() - 1)
	mask := deepest.Plan.Masks[p.Name]
	if mask == nil {
		return 0
	}
	for i := 0; i < mask.Len(); i++ {
		if mask.Keep(i) {
			return i
		}
	}
	return 0
}

func TestStoreObserverSeesChecksAndResidency(t *testing.T) {
	rm, _ := buildRM(t, 21)
	obs := &storeObsRecorder{}
	rm.SetObserver(obs)
	if obs.residencyReports == 0 {
		t.Fatal("SetObserver must report initial residency")
	}
	if err := rm.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	if err := rm.ApplyLevel(0); err != nil {
		t.Fatal(err)
	}
	if obs.checksOK != 2 {
		t.Fatalf("checksOK = %d after a 2-level restore, want 2", obs.checksOK)
	}
	if obs.lastRatio <= 0 || obs.lastRatio > 1 {
		t.Fatalf("shared ratio %v out of (0,1]", obs.lastRatio)
	}
	rm.CorruptDisplaced(2, 5)
	if err := rm.ApplyLevel(2); err != nil {
		t.Fatal(err) // deepen: no store reads
	}
	if err := rm.ApplyLevel(0); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("want ErrStoreCorrupt, got %v", err)
	}
	if obs.checksFailed == 0 {
		t.Fatal("observer must see the failed checksum verification")
	}
}

type storeObsRecorder struct {
	checksOK, checksFailed int
	residencyReports       int
	lastPrivate            int64
	lastRatio              float64
}

func (o *storeObsRecorder) ObserveTransition(from, to int, weights int64, elapsed time.Duration) {}

func (o *storeObsRecorder) ObserveStoreCheck(ok bool) {
	if ok {
		o.checksOK++
	} else {
		o.checksFailed++
	}
}

func (o *storeObsRecorder) ObserveStoreResidency(privateBytes int64, sharedRatio float64) {
	o.residencyReports++
	o.lastPrivate = privateBytes
	o.lastRatio = sharedRatio
}

func TestRecoveryRoundTrip(t *testing.T) {
	rm, _ := buildRM(t, 31)
	var buf bytes.Buffer
	if err := rm.Store().WriteRecovery(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadRecovery(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.StoredWeights() != rm.StoredWeights() {
		t.Fatalf("StoredWeights %d != %d", st.StoredWeights(), rm.StoredWeights())
	}
	if st.StoreBytes() != rm.StoreBytes() {
		t.Fatalf("StoreBytes %d != %d", st.StoreBytes(), rm.StoreBytes())
	}
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
	// Payload-only stores refuse to hand out views.
	if _, err := st.NewView(buildModel(31)); err == nil {
		t.Fatal("NewView on a payload-only store must fail")
	}
	// A flipped bit anywhere in the displaced values fails the decode.
	raw := buf.Bytes()
	raw[len(raw)-16] ^= 0x40
	if _, err := DecodeRecovery(raw); err == nil {
		t.Fatal("decode of a tampered stream must fail")
	}
}

func TestRecoveryRoundTripHalfPrecision(t *testing.T) {
	m := buildModel(32)
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Build(m, plans, WithHalfPrecisionStore())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rm.Store().WriteRecovery(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := DecodeRecovery(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !st.lossy {
		t.Fatal("lossy flag lost in round trip")
	}
	if st.StoredWeights() != rm.StoredWeights() {
		t.Fatalf("StoredWeights %d != %d", st.StoredWeights(), rm.StoredWeights())
	}
}

func TestDecodeRecoveryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x52},
		[]byte("not a recovery stream at all"),
		{0x52, 0x53, 0x54, 0x31, 0xFF}, // bad flags
		{0x52, 0x53, 0x54, 0x31, 0x00, 0xFF, 0xFF, 0xFF, 0xFF}, // absurd level count
	}
	for i, c := range cases {
		if _, err := DecodeRecovery(c); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}
