package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory the sources came from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test sources, ordered by file name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints; analyzers still run on
	// best-effort information when it is non-empty.
	TypeErrors []error
}

// Loader parses and type-checks packages using only the standard library.
// Imports inside the loaded tree resolve recursively through the loader
// itself; everything else (the standard library) resolves through the
// source importer, which type-checks GOROOT packages from source and so
// needs no export data, network, or module cache.
//
// The package cache and the standard-library importer are guarded by
// mutexes so LoadPatternsParallel can type-check independent packages on
// separate goroutines; token.FileSet is safe for concurrent use by
// construction. Load itself remains a single-goroutine recursive walk.
type Loader struct {
	fset *token.FileSet
	// resolve maps an import path to a source directory for paths the
	// loader owns; ok=false falls through to the standard-library importer.
	resolve func(path string) (dir string, ok bool)
	// stdMu serializes the source importer, which caches internally but is
	// not documented concurrency-safe. Contention is front-loaded: once a
	// standard-library package is cached, Import is a map hit.
	stdMu sync.Mutex
	std   types.Importer
	// mu guards pkgs. loading is only touched by the single-goroutine
	// recursive Load path.
	mu      sync.Mutex
	pkgs    map[string]*Package
	loading map[string]bool
}

func newLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// cached returns the already-loaded package at importPath.
func (l *Loader) cached(importPath string) (*Package, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	pkg, ok := l.pkgs[importPath]
	return pkg, ok
}

// store caches a completed package.
func (l *Loader) store(pkg *Package) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pkgs[pkg.Path] = pkg
}

// stdImport resolves a standard-library import through the serialized
// source importer.
func (l *Loader) stdImport(path string) (*types.Package, error) {
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// NewModuleLoader loads packages of the module rooted at root, reading the
// module path from go.mod.
func NewModuleLoader(root string) (*Loader, string, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, "", err
	}
	l := newLoader(func(path string) (string, bool) {
		if path == modPath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	})
	return l, modPath, nil
}

// NewTreeLoader loads packages from a plain source tree (an analysistest
// style testdata/src layout): import path "a/b" resolves to srcRoot/a/b.
func NewTreeLoader(srcRoot string) *Loader {
	return newLoader(func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Load returns the package at importPath, loading and type-checking it (and
// transitively its in-tree imports) on first use.
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.cached(importPath); ok {
		return pkg, nil
	}
	dir, ok := l.resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve %q to a directory", importPath)
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	// In-tree dependency failures (unparseable dir, import cycle) are load
	// errors, not type errors: the type-checker's Error hook would otherwise
	// swallow them into TypeErrors, and the parallel loader hard-fails on
	// the same conditions.
	var depErr error
	pkg, err := l.check(importPath, dir, files, importerFunc(func(path string) (*types.Package, error) {
		if _, ok := l.resolve(path); ok {
			dep, err := l.Load(path)
			if err != nil {
				if depErr == nil {
					depErr = err
				}
				return nil, err
			}
			return dep.Types, nil
		}
		return l.stdImport(path)
	}))
	if err != nil {
		return nil, err
	}
	if depErr != nil {
		return nil, depErr
	}
	l.store(pkg)
	return pkg, nil
}

// check type-checks one parsed package through imp.
func (l *Loader) check(importPath, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if tpkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// parseDir parses the directory's non-test .go files with comments,
// ordered by name for deterministic output.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// expandPatterns resolves the driver's package patterns to source
// directories, sorted. Supported forms: "./..." (every package under
// root), "dir/..." (every package under dir), and plain directory paths
// relative to root. Hidden, underscore, testdata, and vendor directories
// are excluded from tree walks — vendored sources are third-party code the
// suite's invariants do not govern.
func expandPatterns(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	addTree := func(base string) error {
		return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) && !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := addTree(root); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := addTree(base); err != nil {
				return nil, err
			}
		default:
			dir := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("lint: no Go package in %s", dir)
			}
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// dirImportPath maps a source directory under root to its import path.
func dirImportPath(root, modPath, dir string) (string, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}

// LoadPatterns expands the driver's package patterns (see expandPatterns)
// and loads each package serially.
func (l *Loader) LoadPatterns(root, modPath string, patterns []string) ([]*Package, error) {
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := dirImportPath(root, modPath, dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
