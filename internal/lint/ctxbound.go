package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxboundPackages lists the long-lived packages (exact path, or a prefix
// of path+"/") whose goroutines must be cancellable or joinable: the
// governor loop, the perception pipeline, and the metrics recorders all
// outlive individual ticks, so a fire-and-forget goroutine there is a leak.
var CtxboundPackages = []string{
	"repro/internal/governor",
	"repro/internal/perception",
	"repro/internal/metrics",
	"repro/internal/telemetry",
	// Covered by the telemetry prefix rule, listed explicitly: the window
	// tier's persistence store and key math must stay deterministic and
	// goroutine-clean (time flows in as parameters, never from time.Now).
	"repro/internal/telemetry/window",
	// Covered by the telemetry prefix rule, listed explicitly because the
	// exporter's periodic loop is exactly the kind of long-lived goroutine
	// this analyzer exists for.
	"repro/internal/telemetry/otlp",
	"repro/internal/fleet",
	"repro/internal/fault",
	"repro/internal/health",
	// The front end's accept loop, pumps, router, and per-connection
	// reader/writer pairs all outlive individual frames.
	"repro/internal/ingest",
}

// AnalyzerCtxbound audits `go func` literals in long-lived packages: the
// spawned body must reference a context.Context, a channel, or a
// sync.WaitGroup (some way for the spawner to stop or join it), and it must
// not capture an enclosing loop's variables — iteration state crossing a
// goroutine boundary must be passed as an argument so the data flow is
// explicit at the spawn site.
var AnalyzerCtxbound = &Analyzer{
	Name:     "ctxbound",
	Severity: SeverityError,
	Doc: "in long-lived packages (see CtxboundPackages), flag go-func literals with no " +
		"done/context/WaitGroup signal and literals that capture enclosing loop variables.",
	Run: runCtxbound,
}

func runCtxbound(pass *Pass) error {
	if !ctxboundApplies(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		inspectStack([]*ast.File{f}, func(n ast.Node, stack []ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				// Spawning a named function: its body is not visible here;
				// the named function's own package is where it gets audited.
				return true
			}
			if !hasCompletionSignal(pass, lit) {
				pass.Reportf(g.Pos(), "goroutine has no done/context/WaitGroup signal; the spawner cannot stop or join it")
			}
			for _, captured := range capturedLoopVars(pass, lit, stack) {
				pass.Reportf(g.Pos(), "goroutine captures loop variable %q; pass it as an argument", captured)
			}
			return true
		})
	}
	return nil
}

func ctxboundApplies(pkgPath string) bool {
	for _, p := range CtxboundPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// hasCompletionSignal reports whether the literal's body touches any value
// that can signal cancellation or completion: a context.Context, a channel
// of any type, or a sync.WaitGroup.
func hasCompletionSignal(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil {
			return true
		}
		t := obj.Type()
		if t == nil {
			return true
		}
		if isSignalType(t) {
			found = true
		}
		return true
	})
	return found
}

func isSignalType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch {
			case obj.Pkg().Path() == "context" && obj.Name() == "Context":
				return true
			case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
				return true
			}
		}
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// capturedLoopVars returns the names of enclosing-loop iteration variables
// the literal's body references without receiving them as parameters.
func capturedLoopVars(pass *Pass, lit *ast.FuncLit, stack []ast.Node) []string {
	loopObjs := map[types.Object]bool{}
	addDef := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopObjs[obj] = true
			}
		}
	}
	for _, anc := range stack {
		switch s := anc.(type) {
		case *ast.RangeStmt:
			if s.Tok == token.DEFINE {
				addDef(s.Key)
				if s.Value != nil {
					addDef(s.Value)
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					addDef(lhs)
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			// A function boundary between the loop and the go statement
			// resets which loop variables are "enclosing".
			loopObjs = map[types.Object]bool{}
		}
	}
	if len(loopObjs) == 0 {
		return nil
	}
	var names []string
	seen := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && loopObjs[obj] && !seen[id.Name] {
			seen[id.Name] = true
			names = append(names, id.Name)
		}
		return true
	})
	return names
}
