package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerLockcheck guards the recovery store's and the concurrent
// pipeline's locking discipline with three checks:
//
//  1. values whose type contains a sync.Mutex/RWMutex copied by value
//     (receivers, parameters, results, plain assignments, range values) —
//     a copied mutex silently stops guarding the original;
//  2. a mutex Lock()/RLock() in a function with no matching
//     Unlock()/RUnlock() on the same receiver expression reachable in that
//     function (defer or a later statement) — a held lock across a hot
//     path is a deadline violation waiting to happen;
//  3. exported struct fields read or written outside the declaring package
//     when the struct also carries a mutex — such fields are meant to be
//     accessed through the type's own locked methods.
var AnalyzerLockcheck = &Analyzer{
	Name:     "lockcheck",
	Severity: SeverityError,
	Doc: "flag mutexes copied by value, Lock() calls with no reachable Unlock in the same function, " +
		"and cross-package access to exported fields of mutex-guarded structs.",
	Run: runLockcheck,
}

func runLockcheck(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		checkLockCopies(pass, f)
		checkLockPairs(pass, f)
		checkGuardedFields(pass, f)
	}
	return nil
}

// containsLock reports whether a value of type t holds lock state directly
// (not behind a pointer, slice, map, or channel), so that copying the value
// copies the lock.
func containsLock(t types.Type) bool {
	return containsLock1(t, map[types.Type]bool{})
}

func containsLock1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock1(u.Elem(), seen)
	}
	return false
}

// checkLockCopies flags by-value transfers of lock-containing types.
func checkLockCopies(pass *Pass, f *ast.File) {
	flagFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				pass.Reportf(field.Type.Pos(), "%s passes a lock by value (%s); use a pointer", what, t)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			flagFieldList(n.Recv, "receiver")
			flagFieldList(n.Type.Params, "parameter")
			flagFieldList(n.Type.Results, "result")
		case *ast.FuncLit:
			flagFieldList(n.Type.Params, "parameter")
			flagFieldList(n.Type.Results, "result")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				if !copiesValue(rhs) {
					continue
				}
				if t := pass.TypesInfo.TypeOf(rhs); containsLock(t) {
					pass.Reportf(rhs.Pos(), "assignment copies a lock (%s); use a pointer", t)
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pass.TypesInfo.TypeOf(n.Value); containsLock(t) {
					pass.Reportf(n.Value.Pos(), "range value copies a lock (%s); range over indices or pointers", t)
				}
			}
		}
		return true
	})
}

// copiesValue reports whether evaluating e yields a copy of an existing
// value (as opposed to constructing a fresh one, whose zero mutex is fine).
func copiesValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesValue(e.X)
	}
	return false
}

// mutexMethod returns the receiver expression and method name when call is
// a sync.Mutex/RWMutex Lock/Unlock-family method call.
func mutexMethod(pass *Pass, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// checkLockPairs flags Lock/RLock calls whose function body contains no
// Unlock/RUnlock on the same receiver expression. The check is
// intra-procedural and keys receivers by their printed expression — a
// deliberate, documented approximation.
func checkLockPairs(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		type lockCall struct {
			pos  ast.Node
			name string
			key  string
		}
		var locks []lockCall
		unlocked := map[string]bool{}
		ast.Inspect(body, func(m ast.Node) bool {
			// Nested function literals audit their own bodies; an Unlock
			// inside one is not reachable from this frame's Lock.
			if _, isLit := m.(*ast.FuncLit); isLit && m != n {
				return false
			}
			call, isCall := m.(*ast.CallExpr)
			if !isCall {
				return true
			}
			recv, name, isMutex := mutexMethod(pass, call)
			if !isMutex {
				return true
			}
			key := types.ExprString(recv)
			switch name {
			case "Lock", "RLock":
				locks = append(locks, lockCall{pos: call, name: name, key: key})
			case "Unlock":
				unlocked[key+"/Lock"] = true
				unlocked[key+"/TryLock"] = true
			case "RUnlock":
				unlocked[key+"/RLock"] = true
				unlocked[key+"/TryRLock"] = true
			}
			return true
		})
		for _, lc := range locks {
			if !unlocked[lc.key+"/"+lc.name] {
				pass.Reportf(lc.pos.Pos(), "%s.%s() with no reachable %s in this function; add a defer",
					lc.key, lc.name, map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}[lc.name])
			}
		}
		return true
	})
}

// checkGuardedFields flags cross-package access to exported fields of
// structs that carry their own mutex.
func checkGuardedFields(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		field, ok := s.Obj().(*types.Var)
		if !ok || !field.Exported() || field.Pkg() == nil || field.Pkg() == pass.Pkg {
			return true
		}
		recv := s.Recv()
		if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
			recv = ptr.Elem()
		}
		st, ok := recv.Underlying().(*types.Struct)
		if !ok {
			return true
		}
		for i := 0; i < st.NumFields(); i++ {
			ft := st.Field(i).Type()
			if named, isNamed := ft.(*types.Named); isNamed {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
					(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
					pass.Reportf(sel.Sel.Pos(),
						"field %s.%s is guarded by a sibling mutex; access it through %s's methods",
						recv, field.Name(), recv)
					return true
				}
			}
		}
		return true
	})
}
