package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"runtime"
	"sort"
	"strconv"
	"sync"
)

// LoadPatternsParallel is LoadPatterns with goroutine-per-package
// type-checking. It returns exactly the packages LoadPatterns would, in
// the same order, with identical type information — only the wall clock
// differs.
//
// Pipeline: (1) expand the patterns to target directories; (2) parse the
// targets and, transitively, every in-tree import, fanning the parses
// across workers (token.FileSet is concurrency-safe); (3) type-check in
// dependency order — a package starts the moment its in-tree imports are
// done, so independent subtrees check concurrently. Standard-library
// imports go through the loader's serialized source importer; in-tree
// imports resolve from the loader cache, which the schedule guarantees is
// populated. workers <= 0 selects GOMAXPROCS.
func (l *Loader) LoadPatternsParallel(root, modPath string, patterns []string, workers int) ([]*Package, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	targets := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		path, err := dirImportPath(root, modPath, dir)
		if err != nil {
			return nil, err
		}
		targets = append(targets, path)
	}

	graph, err := l.parseClosure(targets, workers)
	if err != nil {
		return nil, err
	}
	if err := l.checkWaves(graph, workers); err != nil {
		return nil, err
	}

	pkgs := make([]*Package, 0, len(targets))
	for _, path := range targets {
		pkg, ok := l.cached(path)
		if !ok {
			return nil, fmt.Errorf("lint: internal: %s missing after parallel load", path)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parsedPkg is one package between the parse and type-check phases.
type parsedPkg struct {
	path  string
	dir   string
	files []*ast.File
	// deps are the in-tree imports (paths the loader resolves).
	deps []string
}

// parseClosure parses the target packages and every in-tree package they
// transitively import, using up to workers goroutines. Packages already in
// the loader cache are returned as empty nodes (no files) so the schedule
// can treat them as pre-satisfied.
func (l *Loader) parseClosure(targets []string, workers int) (map[string]*parsedPkg, error) {
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		graph   = map[string]*parsedPkg{}
		firstEr error
		sem     = make(chan struct{}, workers)
	)
	var enqueue func(path string)
	enqueue = func(path string) {
		// Caller holds mu.
		if _, seen := graph[path]; seen {
			return
		}
		node := &parsedPkg{path: path}
		graph[path] = node
		if _, done := l.cached(path); done {
			return // already type-checked by an earlier load
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dir, ok := l.resolve(path)
			if !ok {
				mu.Lock()
				defer mu.Unlock()
				if firstEr == nil {
					firstEr = fmt.Errorf("lint: cannot resolve %q to a directory", path)
				}
				return
			}
			files, err := l.parseDir(dir)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstEr == nil {
					firstEr = err
				}
				return
			}
			node.dir = dir
			node.files = files
			for _, f := range files {
				for _, imp := range f.Imports {
					p, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if _, inTree := l.resolve(p); inTree {
						node.deps = append(node.deps, p)
						enqueue(p)
					}
				}
			}
		}()
	}
	mu.Lock()
	for _, path := range targets {
		enqueue(path)
	}
	mu.Unlock()
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return graph, nil
}

// checkWaves type-checks the parsed graph in dependency order, fanning
// independent packages across workers. Each package's importer reads
// in-tree dependencies straight from the loader cache — the schedule only
// releases a package once every dependency is checked and stored.
func (l *Loader) checkWaves(graph map[string]*parsedPkg, workers int) error {
	// indegree counts unchecked in-tree deps; dependents is the reverse
	// edge list. Cached nodes (no files) start satisfied.
	indegree := map[string]int{}
	dependents := map[string][]string{}
	for path, node := range graph {
		if _, done := l.cached(path); done {
			continue
		}
		seen := map[string]bool{}
		for _, dep := range node.deps {
			if seen[dep] || dep == path {
				continue
			}
			seen[dep] = true
			if _, done := l.cached(dep); done {
				continue
			}
			indegree[path]++
			dependents[dep] = append(dependents[dep], path)
		}
	}
	var ready []string
	for path := range graph {
		if _, done := l.cached(path); done {
			continue
		}
		if indegree[path] == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)

	remaining := 0
	for path := range graph {
		if _, done := l.cached(path); !done {
			remaining++
		}
	}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if _, ok := l.resolve(path); ok {
			dep, ok := l.cached(path)
			if !ok {
				return nil, fmt.Errorf("lint: internal: in-tree import %q not yet checked", path)
			}
			return dep.Types, nil
		}
		return l.stdImport(path)
	})
	for len(ready) > 0 {
		wave := ready
		ready = nil
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			firstEr error
			sem     = make(chan struct{}, workers)
		)
		for _, path := range wave {
			node := graph[path]
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				pkg, err := l.check(node.path, node.dir, node.files, imp)
				if err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
				l.store(pkg)
			}()
		}
		wg.Wait()
		if firstEr != nil {
			return firstEr
		}
		remaining -= len(wave)
		next := map[string]bool{}
		for _, path := range wave {
			for _, dep := range dependents[path] {
				indegree[dep]--
				if indegree[dep] == 0 {
					next[dep] = true
				}
			}
		}
		for path := range next {
			ready = append(ready, path)
		}
		sort.Strings(ready)
	}
	if remaining > 0 {
		var stuck []string
		for path := range indegree {
			if _, done := l.cached(path); !done {
				stuck = append(stuck, path)
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("lint: import cycle through %v", stuck)
	}
	return nil
}
