package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetrandPackages lists the import paths (exact, or as a prefix of
// path+"/") where experiment replay must be deterministic: every random
// draw must come from an explicitly seeded *rand.Rand and every timestamp
// from an injected clock.
var DetrandPackages = []string{
	"repro/internal/sim",
	"repro/internal/experiments",
	"repro/internal/dataset",
	"repro/internal/telemetry",
	// Covered by the telemetry prefix rule, listed explicitly: the window
	// tier's persistence store and key math must stay deterministic and
	// goroutine-clean (time flows in as parameters, never from time.Now).
	"repro/internal/telemetry/window",
	// Covered by the telemetry prefix rule, listed explicitly so the OTLP
	// exporter's clock discipline (export timestamps through the seam) is
	// auditable here.
	"repro/internal/telemetry/otlp",
	"repro/internal/fleet",
	// The chaos harness and the watchdog must replay drills tick-for-tick:
	// injector randomness flows from the construction seed, watchdog time
	// from the clock seam.
	"repro/internal/fault",
	"repro/internal/health",
	// The ingestion front end timestamps arrivals and paces retries; both
	// must flow through its clock seam so overload drills replay exactly.
	"repro/internal/ingest",
}

// detrandAllowedFuncs are the math/rand functions that construct seeded
// sources rather than drawing from the shared, unseeded global one.
var detrandAllowedFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// AnalyzerDetrand keeps the replayable packages deterministic: it forbids
// the unseeded math/rand top-level draw functions (their shared global
// source makes replays diverge) and bare time.Now() (wall-clock reads must
// flow through an injectable clock seam such as the package-level
// `var now = time.Now`).
var AnalyzerDetrand = &Analyzer{
	Name:     "detrand",
	Severity: SeverityWarning,
	Doc: "in replay-critical packages (see DetrandPackages), forbid unseeded math/rand top-level " +
		"functions and bare time.Now(); inject a seeded *rand.Rand and a clock seam instead.",
	Run: runDetrand,
}

func runDetrand(pass *Pass) error {
	if !detrandApplies(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods on *rand.Rand have a receiver and are fine; only the
			// package-level functions hit the shared global source.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !detrandAllowedFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "unseeded rand.%s draws from the global source; use a seeded *rand.Rand", fn.Name())
				}
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(call.Pos(), "bare time.Now() breaks replay determinism; read through the package clock seam")
				}
			}
			return true
		})
	}
	return nil
}

func detrandApplies(pkgPath string) bool {
	for _, p := range DetrandPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}
