package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// jsonFinding is one diagnostic in the machine-readable report.
type jsonFinding struct {
	Analyzer   string   `json:"analyzer"`
	Severity   Severity `json:"severity"`
	File       string   `json:"file"`
	Line       int      `json:"line"`
	Column     int      `json:"column"`
	Message    string   `json:"message"`
	Suppressed bool     `json:"suppressed,omitempty"`
}

// jsonDirective is one lint:allow comment in the machine-readable report.
type jsonDirective struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Used     bool   `json:"used"`
	Known    bool   `json:"known"`
}

// jsonReport is the -format=json document. Counts in Summary are derived
// from the same slices the document carries so consumers never need to
// recompute them.
type jsonReport struct {
	Findings   []jsonFinding   `json:"findings"`
	Directives []jsonDirective `json:"directives"`
	Summary    struct {
		Total      int `json:"total"`
		Suppressed int `json:"suppressed"`
		Stale      int `json:"stale"`
	} `json:"summary"`
}

// relPath makes file relative to relTo (slash-separated for portability);
// it falls back to the absolute path when no relative form exists.
func relPath(relTo, file string) string {
	if relTo == "" {
		return file
	}
	rel, err := filepath.Rel(relTo, file)
	if err != nil {
		return file
	}
	return filepath.ToSlash(rel)
}

// WriteJSON encodes the result as a stable, indented JSON document. File
// paths are written relative to relTo when possible so reports do not leak
// build-host directory layouts.
func WriteJSON(w io.Writer, res *Result, relTo string) error {
	doc := jsonReport{Findings: []jsonFinding{}, Directives: []jsonDirective{}}
	for _, d := range res.Diagnostics {
		doc.Findings = append(doc.Findings, jsonFinding{
			Analyzer:   d.Analyzer,
			Severity:   d.Severity,
			File:       relPath(relTo, d.Pos.Filename),
			Line:       d.Pos.Line,
			Column:     d.Pos.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
		doc.Summary.Total++
		if d.Suppressed {
			doc.Summary.Suppressed++
		}
	}
	for _, d := range res.Directives {
		doc.Directives = append(doc.Directives, jsonDirective{
			File:     relPath(relTo, d.Pos.Filename),
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Used:     d.Used,
			Known:    d.Known,
		})
		if !d.Used {
			doc.Summary.Stale++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// sarifLevel maps the suite's severities onto SARIF reportingConfiguration
// levels.
func sarifLevel(s Severity) string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// WriteSARIF encodes the result as a minimal SARIF 2.1.0 log so findings
// ingest into code-scanning UIs. Suppressed findings are emitted with an
// inSource suppression object rather than dropped — reviewers can audit
// what the allow comments hide. analyzers supplies the rule metadata; every
// diagnostic's analyzer must be present in it.
func WriteSARIF(w io.Writer, res *Result, analyzers []*Analyzer, relTo string) error {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID               string       `json:"id"`
		ShortDescription sarifMessage `json:"shortDescription"`
		DefaultConfig    struct {
			Level string `json:"level"`
		} `json:"defaultConfiguration"`
	}
	type sarifLocation struct {
		PhysicalLocation struct {
			ArtifactLocation struct {
				URI string `json:"uri"`
			} `json:"artifactLocation"`
			Region struct {
				StartLine   int `json:"startLine"`
				StartColumn int `json:"startColumn"`
			} `json:"region"`
		} `json:"physicalLocation"`
	}
	type sarifSuppression struct {
		Kind string `json:"kind"`
	}
	type sarifResult struct {
		RuleID       string             `json:"ruleId"`
		Level        string             `json:"level"`
		Message      sarifMessage       `json:"message"`
		Locations    []sarifLocation    `json:"locations"`
		Suppressions []sarifSuppression `json:"suppressions,omitempty"`
	}

	rules := make([]sarifRule, 0, len(analyzers))
	ruleIdx := map[string]bool{}
	for _, a := range analyzers {
		r := sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
		r.DefaultConfig.Level = sarifLevel(a.severity())
		rules = append(rules, r)
		ruleIdx[a.Name] = true
	}
	results := []sarifResult{}
	for _, d := range res.Diagnostics {
		if !ruleIdx[d.Analyzer] {
			return fmt.Errorf("lint: diagnostic from unregistered analyzer %q", d.Analyzer)
		}
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   sarifLevel(d.Severity),
			Message: sarifMessage{Text: d.Message},
		}
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = relPath(relTo, d.Pos.Filename)
		loc.PhysicalLocation.Region.StartLine = d.Pos.Line
		loc.PhysicalLocation.Region.StartColumn = d.Pos.Column
		r.Locations = []sarifLocation{loc}
		if d.Suppressed {
			r.Suppressions = []sarifSuppression{{Kind: "inSource"}}
		}
		results = append(results, r)
	}

	doc := map[string]any{
		"$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		"version": "2.1.0",
		"runs": []any{
			map[string]any{
				"tool": map[string]any{
					"driver": map[string]any{
						"name":           "rpnlint",
						"informationUri": "docs/LINT.md",
						"rules":          rules,
					},
				},
				"results": results,
			},
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
