// Package lint implements rpnlint, the project's custom static-analysis
// suite. It enforces the safety invariants the reversible-runtime-pruning
// (RRP) design depends on: library code that never panics in a hot path,
// float comparisons that go through an epsilon helper, mutexes that are
// never copied and always released, deterministic randomness and clocks in
// the replayable packages, and goroutines that carry a cancellation or
// completion signal.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic, an analysistest-style fixture
// harness) but is implemented on the standard library only: this build
// environment has no module proxy access, so x/tools cannot be pinned in
// go.mod. If that dependency ever becomes available, each analyzer's Run
// function ports mechanically — the Pass surface is a strict subset of the
// upstream one.
//
// Suppressions: a finding is silenced by a comment containing
// `lint:allow(<analyzer>)` — e.g. `//lint:allow(nopanic)` — placed either
// on the offending line or on its own line directly above. Multiple
// analyzers may be listed, comma-separated. The driver (cmd/rpnlint) and
// the test harness both honor the same syntax.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Severity ranks an analyzer's findings for CI ingestion. Every severity
// still gates verify.sh by default; the tiers exist so downstream tooling
// (SARIF viewers, dashboards) can rank, and so a driver flag can relax the
// gate deliberately rather than by accident.
type Severity string

const (
	// SeverityError marks invariants whose violation is a direct safety
	// defect: a leak, a masked failure, a data race, a panic in a hot path.
	SeverityError Severity = "error"
	// SeverityWarning marks discipline rules (determinism, float hygiene)
	// whose violation degrades replayability or reviewability rather than
	// breaking the restore guarantee outright.
	SeverityWarning Severity = "warning"
)

// FailsUnder reports whether a finding of this severity fails the build
// when the driver's gate is set to min ("error" gates only errors,
// "warning" gates everything). An empty severity counts as an error.
func (s Severity) FailsUnder(min Severity) bool {
	if min == SeverityError {
		return s != SeverityWarning
	}
	return true
}

// Analyzer is one named check. It mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and in lint:allow comments.
	Name string
	// Doc is a one-paragraph description, shown by `rpnlint -help`.
	Doc string
	// Severity is the tier stamped on the analyzer's findings
	// (SeverityError when left zero).
	Severity Severity
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// severity resolves the zero value.
func (a *Analyzer) severity() Severity {
	if a.Severity == "" {
		return SeverityError
	}
	return a.Severity
}

// Pass carries one package's parsed and type-checked state to an analyzer.
// It mirrors the subset of analysis.Pass the suite needs.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// PkgPath is the package's import path.
	PkgPath string
	// TypesInfo holds the type-checker's expression, definition, use, and
	// selection records for Files.
	TypesInfo *types.Info

	diagnostics *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Severity: p.Analyzer.severity(),
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f came from a _test.go file. The loader never
// feeds test files to analyzers, but fixture harnesses may.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Diagnostic is one finding with its resolved source position.
type Diagnostic struct {
	Analyzer   string
	Severity   Severity
	Pos        token.Position
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Directive is one //lint:allow(...) suppression comment, tracked for the
// stale-suppression audit: a directive that suppressed no diagnostic in a
// whole-repo run is dead weight hiding nothing, and usually marks code that
// was since fixed (delete the comment) or an analyzer rename (fix the name).
type Directive struct {
	// Pos is the comment's position.
	Pos token.Position
	// Analyzer is one name from the directive's parenthesized list (a
	// comment naming several analyzers yields one Directive each).
	Analyzer string
	// Used records whether any diagnostic was suppressed by this directive.
	Used bool
	// Known records whether Analyzer matched a registered analyzer in the
	// run; an unknown name can never suppress anything.
	Known bool
}

func (d Directive) String() string {
	return fmt.Sprintf("%s:%d: lint:allow(%s)", d.Pos.Filename, d.Pos.Line, d.Analyzer)
}

// allowRe extracts the analyzer list from a lint:allow comment.
var allowRe = regexp.MustCompile(`lint:allow\(([^)]+)\)`)

// directiveRe recognizes a directive-shaped comment: the comment must
// *begin* with lint:allow so that prose merely mentioning the syntax (doc
// comments, examples) neither suppresses findings nor trips the stale
// audit.
var directiveRe = regexp.MustCompile(`^//\s*lint:allow\(`)

// suppressionIndex maps "file:line" to the directives allowed there, keyed
// by analyzer name. A comment on line L grants the allowance to line L and
// line L+1, covering both the trailing-comment and comment-above
// placements; both keys point at the same *Directive so one use marks it.
type suppressionIndex map[string]map[string][]*Directive

// buildSuppressions indexes every directive-shaped lint:allow comment in
// files and appends the discovered directives to *out.
func buildSuppressions(fset *token.FileSet, files []*ast.File, out *[]*Directive) suppressionIndex {
	idx := suppressionIndex{}
	add := func(file string, line int, d *Directive) {
		key := fmt.Sprintf("%s:%d", file, line)
		if idx[key] == nil {
			idx[key] = map[string][]*Directive{}
		}
		idx[key][d.Analyzer] = append(idx[key][d.Analyzer], d)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !directiveRe.MatchString(c.Text) {
					continue
				}
				for _, m := range allowRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					for _, name := range strings.Split(m[1], ",") {
						name = strings.TrimSpace(name)
						if name == "" {
							continue
						}
						d := &Directive{Pos: pos, Analyzer: name}
						if out != nil {
							*out = append(*out, d)
						}
						add(pos.Filename, pos.Line, d)
						add(pos.Filename, pos.Line+1, d)
					}
				}
			}
		}
	}
	return idx
}

// allows reports whether a directive covers d, marking every covering
// directive used.
func (s suppressionIndex) allows(d Diagnostic) bool {
	key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
	ds := s[key][d.Analyzer]
	for _, dir := range ds {
		dir.Used = true
	}
	return len(ds) > 0
}

// Result is one Run's complete output: every finding (suppressed ones
// included, marked) and every suppression directive (used ones marked).
type Result struct {
	Diagnostics []Diagnostic
	Directives  []Directive
}

// Stale returns the directives that suppressed nothing — the
// stale-suppression audit's finding list. Only meaningful for runs that
// covered every package and analyzer the directives could apply to (a
// partial run under-reports uses).
func (r *Result) Stale() []Directive {
	var stale []Directive
	for _, d := range r.Directives {
		if !d.Used {
			stale = append(stale, d)
		}
	}
	return stale
}

// Run applies every analyzer to every package and returns all findings
// sorted by position, plus the suppression directives seen, sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Diagnostic
	var dirs []*Directive
	for _, pkg := range pkgs {
		sup := buildSuppressions(pkg.Fset, pkg.Files, &dirs)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				PkgPath:     pkg.Path,
				TypesInfo:   pkg.Info,
				diagnostics: &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for i := range diags {
				diags[i].Suppressed = sup.allows(diags[i])
			}
			all = append(all, diags...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	res := &Result{Diagnostics: all}
	for _, d := range dirs {
		d.Known = known[d.Analyzer]
		res.Directives = append(res.Directives, *d)
	}
	sort.Slice(res.Directives, func(i, j int) bool {
		a, b := res.Directives[i], res.Directives[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// RunAnalyzers runs every analyzer over every package and returns all
// findings, suppressed ones included (marked), sorted by position. It is
// Run without the directive bookkeeping.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := Run(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// inspectStack walks every file, calling fn with each node and the stack of
// its ancestors (outermost first, not including n itself). Returning false
// skips the node's children.
func inspectStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
