// Package lint implements rpnlint, the project's custom static-analysis
// suite. It enforces the safety invariants the reversible-runtime-pruning
// (RRP) design depends on: library code that never panics in a hot path,
// float comparisons that go through an epsilon helper, mutexes that are
// never copied and always released, deterministic randomness and clocks in
// the replayable packages, and goroutines that carry a cancellation or
// completion signal.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic, an analysistest-style fixture
// harness) but is implemented on the standard library only: this build
// environment has no module proxy access, so x/tools cannot be pinned in
// go.mod. If that dependency ever becomes available, each analyzer's Run
// function ports mechanically — the Pass surface is a strict subset of the
// upstream one.
//
// Suppressions: a finding is silenced by a comment containing
// `lint:allow(<analyzer>)` — e.g. `//lint:allow(nopanic)` — placed either
// on the offending line or on its own line directly above. Multiple
// analyzers may be listed, comma-separated. The driver (cmd/rpnlint) and
// the test harness both honor the same syntax.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. It mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and in lint:allow comments.
	Name string
	// Doc is a one-paragraph description, shown by `rpnlint -help`.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state to an analyzer.
// It mirrors the subset of analysis.Pass the suite needs.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// PkgPath is the package's import path.
	PkgPath string
	// TypesInfo holds the type-checker's expression, definition, use, and
	// selection records for Files.
	TypesInfo *types.Info

	diagnostics *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f came from a _test.go file. The loader never
// feeds test files to analyzers, but fixture harnesses may.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Diagnostic is one finding with its resolved source position.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// allowRe extracts the analyzer list from a lint:allow comment.
var allowRe = regexp.MustCompile(`lint:allow\(([^)]+)\)`)

// suppressionIndex maps "file:line" to the set of analyzer names allowed
// there. A comment on line L grants the allowance to line L and line L+1,
// covering both the trailing-comment and comment-above placements.
type suppressionIndex map[string]map[string]bool

func buildSuppressions(fset *token.FileSet, files []*ast.File) suppressionIndex {
	idx := suppressionIndex{}
	add := func(file string, line int, name string) {
		key := fmt.Sprintf("%s:%d", file, line)
		if idx[key] == nil {
			idx[key] = map[string]bool{}
		}
		idx[key][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range allowRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					for _, name := range strings.Split(m[1], ",") {
						name = strings.TrimSpace(name)
						if name == "" {
							continue
						}
						add(pos.Filename, pos.Line, name)
						add(pos.Filename, pos.Line+1, name)
					}
				}
			}
		}
	}
	return idx
}

func (s suppressionIndex) allows(d Diagnostic) bool {
	key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
	return s[key][d.Analyzer]
}

// RunAnalyzers runs every analyzer over every package and returns all
// findings, suppressed ones included (marked), sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		sup := buildSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				PkgPath:     pkg.Path,
				TypesInfo:   pkg.Info,
				diagnostics: &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for i := range diags {
				diags[i].Suppressed = sup.allows(diags[i])
			}
			all = append(all, diags...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// inspectStack walks every file, calling fn with each node and the stack of
// its ancestors (outermost first, not including n itself). Returning false
// skips the node's children.
func inspectStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
