package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloateq flags == and != between floating-point expressions.
// Accuracy contracts, sparsity targets, and calibration values are floats;
// exact equality on them silently varies across kernels and platforms, so
// comparisons must go through metrics.ApproxEqual (or an explicit
// //lint:allow(floateq) where bit-exactness is the point — e.g. the
// pruned-weights-are-exact-zeros sparse skip).
var AnalyzerFloateq = &Analyzer{
	Name:     "floateq",
	Severity: SeverityWarning,
	Doc: "flag ==/!= between floating-point expressions; compare through metrics.ApproxEqual, " +
		"or suppress with //lint:allow(floateq) where exact bit equality is intended.",
	Run: runFloateq,
}

func runFloateq(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.TypesInfo.TypeOf(bin.X)) || isFloat(pass.TypesInfo.TypeOf(bin.Y)) {
				pass.Reportf(bin.OpPos, "floating-point %s comparison; use metrics.ApproxEqual or an epsilon", bin.Op)
			}
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
