package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerAtomicmix extends lockcheck's guarded-field discipline to the
// lock-free side: a variable or struct field that is accessed through
// sync/atomic anywhere in the package must be accessed through sync/atomic
// everywhere — one plain load or store next to atomic ones re-introduces
// exactly the race the atomics were bought to remove, and the race
// detector only sees it when a test happens to interleave the two.
//
// Mechanics: pass 1 collects every object whose address is taken inside a
// sync/atomic call (atomic.AddInt64(&s.n, 1) marks s.n); pass 2 flags
// every other use of those objects outside a sync/atomic call. Composite
// literal keys are exempt: a struct literal initializes the field before
// the value can be shared. The cleaner fix is usually the typed atomics
// (atomic.Int64, atomic.Pointer), which make mixing impossible.
var AnalyzerAtomicmix = &Analyzer{
	Name:     "atomicmix",
	Severity: SeverityError,
	Doc: "flag non-atomic reads/writes of variables and fields that are accessed through sync/atomic " +
		"elsewhere in the package; prefer the typed atomics, which make mixing impossible.",
	Run: runAtomicmix,
}

func runAtomicmix(pass *Pass) error {
	// Pass 1: objects addressed inside sync/atomic calls, and every ident
	// node lexically inside such a call (those uses are the sanctioned
	// ones).
	atomicObjs := map[types.Object]string{}
	inAtomicCall := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			// Only package-level functions (atomic.AddInt64, atomic.StorePointer,
			// ...) name their atomic cell through an &arg. For methods on the
			// typed atomics (atomic.Int64, atomic.Pointer[T]) the cell is the
			// receiver and the arguments are plain values — an &local passed to
			// Pointer.Store is not itself shared atomic state.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				for _, arg := range call.Args {
					if obj := addressedObject(pass, arg); obj != nil {
						if _, seen := atomicObjs[obj]; !seen {
							atomicObjs[obj] = fn.Name()
						}
					}
				}
			}
			ast.Inspect(call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					inAtomicCall[id] = true
				}
				return true
			})
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}
	// Pass 2: any other use of those objects is a mixing race.
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		inspectStack([]*ast.File{f}, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			op, isAtomic := atomicObjs[obj]
			if !isAtomic || inAtomicCall[id] {
				return true
			}
			if isCompositeLitKey(id, stack) {
				return true
			}
			pass.Reportf(id.Pos(), "%s is accessed with atomic.%s elsewhere in this package; "+
				"this plain access races with it — use sync/atomic (or a typed atomic) consistently", id.Name, op)
			return true
		})
	}
	return nil
}

// addressedObject resolves &x or &s.f to the variable object being
// addressed, or nil when the argument is not an address-of expression over
// an identifier or field selector.
func addressedObject(pass *Pass, arg ast.Expr) types.Object {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	switch x := ast.Unparen(un.X).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[x.Sel]
	}
	return nil
}

// isCompositeLitKey reports whether id is the key of a composite literal
// element — a pre-publication initialization, not a shared-state access.
func isCompositeLitKey(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, inLit := stack[len(stack)-2].(*ast.CompositeLit)
	return inLit
}
