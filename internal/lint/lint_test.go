package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func fixtures(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestNopanic(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerNopanic, "nopanic")
}

func TestNopanicSkipsMainPackages(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerNopanic, "nopanic/mainpkg")
}

func TestFloateq(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerFloateq, "floateq")
}

func TestLockcheck(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerLockcheck, "lockcheck")
}

func TestDetrand(t *testing.T) {
	old := lint.DetrandPackages
	lint.DetrandPackages = append([]string{"detrand"}, old...)
	defer func() { lint.DetrandPackages = old }()
	linttest.Run(t, fixtures(t), lint.AnalyzerDetrand, "detrand")
}

func TestDetrandSilentOutsideRegisteredPackages(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerDetrand, "detrandoff")
}

func TestCtxbound(t *testing.T) {
	old := lint.CtxboundPackages
	lint.CtxboundPackages = append([]string{"ctxbound"}, old...)
	defer func() { lint.CtxboundPackages = old }()
	linttest.Run(t, fixtures(t), lint.AnalyzerCtxbound, "ctxbound")
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}
