package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func fixtures(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestNopanic(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerNopanic, "nopanic")
}

func TestNopanicSkipsMainPackages(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerNopanic, "nopanic/mainpkg")
}

func TestFloateq(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerFloateq, "floateq")
}

func TestLockcheck(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerLockcheck, "lockcheck")
}

func TestDetrand(t *testing.T) {
	old := lint.DetrandPackages
	lint.DetrandPackages = append([]string{"detrand"}, old...)
	defer func() { lint.DetrandPackages = old }()
	linttest.Run(t, fixtures(t), lint.AnalyzerDetrand, "detrand")
}

func TestDetrandSilentOutsideRegisteredPackages(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerDetrand, "detrandoff")
}

func TestCtxbound(t *testing.T) {
	old := lint.CtxboundPackages
	lint.CtxboundPackages = append([]string{"ctxbound"}, old...)
	defer func() { lint.CtxboundPackages = old }()
	linttest.Run(t, fixtures(t), lint.AnalyzerCtxbound, "ctxbound")
}

func TestGoroleak(t *testing.T) {
	old := lint.GoroleakPackages
	lint.GoroleakPackages = append([]string{"goroleak"}, old...)
	defer func() { lint.GoroleakPackages = old }()
	linttest.Run(t, fixtures(t), lint.AnalyzerGoroleak, "goroleak")
}

func TestGoroleakSilentOutsideRegisteredPackages(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerGoroleak, "goroleakoff")
}

func TestErrdrop(t *testing.T) {
	old := lint.ErrdropPackages
	lint.ErrdropPackages = append([]string{"errdrop"}, old...)
	defer func() { lint.ErrdropPackages = old }()
	linttest.Run(t, fixtures(t), lint.AnalyzerErrdrop, "errdrop")
}

func TestErrdropSilentOutsideRegisteredPackages(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerErrdrop, "errdropoff")
}

func TestAtomicmix(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.AnalyzerAtomicmix, "atomicmix")
}

func TestSeverities(t *testing.T) {
	want := map[string]lint.Severity{
		"atomicmix": lint.SeverityError,
		"ctxbound":  lint.SeverityError,
		"detrand":   lint.SeverityWarning,
		"errdrop":   lint.SeverityError,
		"floateq":   lint.SeverityWarning,
		"goroleak":  lint.SeverityError,
		"lockcheck": lint.SeverityError,
		"nopanic":   lint.SeverityError,
	}
	if len(lint.All()) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(lint.All()), len(want))
	}
	for _, a := range lint.All() {
		if a.Severity != want[a.Name] {
			t.Errorf("%s severity = %q, want %q", a.Name, a.Severity, want[a.Name])
		}
	}
}

func TestSeverityFailsUnder(t *testing.T) {
	cases := []struct {
		sev, min lint.Severity
		want     bool
	}{
		{lint.SeverityError, lint.SeverityWarning, true},
		{lint.SeverityWarning, lint.SeverityWarning, true},
		{lint.SeverityError, lint.SeverityError, true},
		{lint.SeverityWarning, lint.SeverityError, false},
		{"", lint.SeverityError, true}, // zero severity counts as error
	}
	for _, c := range cases {
		if got := c.sev.FailsUnder(c.min); got != c.want {
			t.Errorf("Severity(%q).FailsUnder(%q) = %v, want %v", c.sev, c.min, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}
