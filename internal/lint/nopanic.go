package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NopanicAllowlist names functions (as "pkgpath.Func" or
// "pkgpath.(Type).Method") whose bodies may panic without a finding: the
// sanctioned shape-validation helpers. Everything else in library code must
// return errors, or carry an explicit //lint:allow(nopanic) suppression at
// the panic site with a comment saying why the panic is a genuine
// programmer-error invariant.
var NopanicAllowlist = map[string]bool{
	"repro/internal/tensor.checkMatMulShapes": true,
	// Fixture entry exercised by the analysistest suite.
	"nopanic.checkMatMulShapes": true,
}

// AnalyzerNopanic forbids panic and log.Fatal* in library (non-main,
// non-test) code. The RRP governor calls into these packages from its
// control loop; a panic there is a missed deadline, so failures must
// surface as returned errors. Panics are permitted only inside allowlisted
// validation helpers or under //lint:allow(nopanic).
var AnalyzerNopanic = &Analyzer{
	Name:     "nopanic",
	Severity: SeverityError,
	Doc: "forbid panic/log.Fatal in library packages; hot-path failures must be returned errors. " +
		"Allowlisted shape-validation helpers (see NopanicAllowlist) and //lint:allow(nopanic) sites are exempt.",
	Run: runNopanic,
}

func runNopanic(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		inspectStack([]*ast.File{f}, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && obj.Name() == "panic" {
					if !inAllowlistedFunc(pass, stack) {
						pass.Reportf(call.Pos(), "panic in library code; return an error or route through an allowlisted validation helper")
					}
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
					if fn.Pkg().Path() == "log" && strings.HasPrefix(fn.Name(), "Fatal") {
						pass.Reportf(call.Pos(), "log.%s in library code terminates the process; return an error", fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// inAllowlistedFunc reports whether the innermost enclosing function
// declaration is on NopanicAllowlist.
func inAllowlistedFunc(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := pass.PkgPath + "." + fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			recv := fd.Recv.List[0].Type
			if star, ok := recv.(*ast.StarExpr); ok {
				recv = star.X
			}
			if id, ok := recv.(*ast.Ident); ok {
				name = pass.PkgPath + ".(" + id.Name + ")." + fd.Name.Name
			}
		}
		return NopanicAllowlist[name]
	}
	return false
}
