package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroleakPackages lists the import paths (exact, or as a prefix of
// path+"/") whose goroutines must be provably cancellable or joinable. The
// restore-under-deadline guarantee lives in exactly these packages: a
// leaked goroutine there holds locks, queues, or model state past the point
// the watchdog thinks the instance is fenced, and the chaos e2e only
// catches that class at runtime — this analyzer catches it at review time.
var GoroleakPackages = []string{
	"repro/internal/governor",
	"repro/internal/perception",
	"repro/internal/metrics",
	"repro/internal/telemetry",
	// Covered by the telemetry prefix rule, listed explicitly: the window
	// tier's persistence store and key math must stay deterministic and
	// goroutine-clean (time flows in as parameters, never from time.Now).
	"repro/internal/telemetry/window",
	// Covered by the telemetry prefix rule, listed explicitly because the
	// exporter's periodic push loop is the longest-lived goroutine in the
	// tree.
	"repro/internal/telemetry/otlp",
	// Includes the dispatcher's batch planner (the batcher goroutine and
	// the fused-group workers in fleet/batch.go).
	"repro/internal/fleet",
	"repro/internal/fault",
	"repro/internal/health",
	"repro/internal/core",
	// Every connection spawns a reader and a writer; Shutdown must be able
	// to join all of them, plus the accept loop, pumps, and router.
	"repro/internal/ingest",
}

// AnalyzerGoroleak audits every `go` statement in registered packages
// (GoroleakPackages): the spawned body — a function literal, or a function
// or method declared in the same package — must contain a reachable
// cancellation or completion point: a channel receive/send/close or range,
// a select over channels, a ctx.Done()/ctx.Err() call, a WaitGroup
// Done/Wait, or a call that passes a context, channel, or WaitGroup onward
// (delegated cancellation). A spawn into another package must delegate a
// signal through the call's receiver or arguments. Anything else is a
// goroutine the spawner can neither stop nor join — the leak class that
// silently rots the restore deadline.
//
// goroleak subsumes the "touches a signal value" half of ctxbound and digs
// one level deeper: ctxbound accepts a body that merely *references* a
// context, goroleak requires the body to consume or forward one.
var AnalyzerGoroleak = &Analyzer{
	Name:     "goroleak",
	Severity: SeverityError,
	Doc: "in long-lived packages (see GoroleakPackages), every go statement must have a reachable " +
		"cancellation/completion path: channel receive/send/close/range, ctx.Done/Err, WaitGroup " +
		"Done/Wait, or delegation of a context/channel/WaitGroup to the callee.",
	Run: runGoroleak,
}

func runGoroleak(pass *Pass) error {
	if !goroleakApplies(pass.PkgPath) {
		return nil
	}
	decls := declIndex(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !spawnCancellable(pass, g.Call, decls, map[*ast.BlockStmt]bool{}) {
				pass.Reportf(g.Pos(), "goroutine has no reachable cancellation or completion path "+
					"(channel op, ctx.Done, or WaitGroup); the spawner can neither stop nor join it")
			}
			return true
		})
	}
	return nil
}

func goroleakApplies(pkgPath string) bool {
	for _, p := range GoroleakPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// declIndex maps each function object declared in this package to its
// declaration, so a `go f()` or `go s.loop()` spawn can be audited through
// the callee's body.
func declIndex(pass *Pass) map[*types.Func]*ast.FuncDecl {
	idx := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = fd
			}
		}
	}
	return idx
}

// spawnCancellable decides whether the spawned call's execution has a
// cancellation/completion point. seen guards recursion through mutually
// recursive same-package helpers.
func spawnCancellable(pass *Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl, seen map[*ast.BlockStmt]bool) bool {
	// A signal-typed receiver or argument at the spawn site counts: the
	// callee was handed a way to stop.
	if callDelegatesSignal(pass, call) {
		return true
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return bodyCancellable(pass, fun.Body, decls, seen)
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if fd, ok := decls[fn]; ok && fd.Body != nil {
				return bodyCancellable(pass, fd.Body, decls, seen)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fd, ok := decls[fn]; ok && fd.Body != nil {
				return bodyCancellable(pass, fd.Body, decls, seen)
			}
		}
	}
	// Callee body not visible (other package, interface method, func
	// value) and no signal delegated: not provably cancellable.
	return false
}

// bodyCancellable walks one function body looking for a cancellation or
// completion point. Nested function literals are part of the body's
// control flow (they run on this goroutine unless spawned again) and are
// included; calls to same-package functions recurse one level at a time
// with cycle protection.
func bodyCancellable(pass *Pass, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl, seen map[*ast.BlockStmt]bool) bool {
	if body == nil || seen[body] {
		return false
	}
	seen[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			// <-ch: the goroutine blocks on (or polls) a channel the
			// spawner controls.
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SendStmt:
			// ch <- v: completion/result handoff the spawner can join on.
			found = true
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if callIsSignalOp(pass, n) || callDelegatesSignal(pass, n) {
				found = true
				return false
			}
			// Recurse into same-package callees: `go d.worker()` is
			// cancellable when worker ranges over d's job channel.
			var fn *types.Func
			switch f := n.Fun.(type) {
			case *ast.Ident:
				fn, _ = pass.TypesInfo.Uses[f].(*types.Func)
			case *ast.SelectorExpr:
				fn, _ = pass.TypesInfo.Uses[f.Sel].(*types.Func)
			}
			if fn != nil {
				if fd, ok := decls[fn]; ok && fd.Body != nil && bodyCancellable(pass, fd.Body, decls, seen) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// callIsSignalOp reports whether call is itself a signal operation:
// close(ch), a WaitGroup Done/Wait, or a context Done/Err.
func callIsSignalOp(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
			return true
		}
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "sync":
			if recvNamed(fn) == "WaitGroup" && (fn.Name() == "Done" || fn.Name() == "Wait") {
				return true
			}
		case "context":
			if recvNamed(fn) == "Context" && (fn.Name() == "Done" || fn.Name() == "Err" || fn.Name() == "Deadline") {
				return true
			}
		}
	}
	return false
}

// recvNamed returns the name of fn's receiver type (dereferenced), or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// callDelegatesSignal reports whether the call hands a context, channel, or
// WaitGroup to its callee — through an argument or the method receiver —
// which counts as forwarding the cancellation responsibility.
func callDelegatesSignal(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && isSignalType(t) {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if t := pass.TypesInfo.TypeOf(sel.X); t != nil && isSignalType(t) {
			return true
		}
	}
	return false
}
