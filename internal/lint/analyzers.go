package lint

// All returns the full rpnlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerCtxbound,
		AnalyzerDetrand,
		AnalyzerFloateq,
		AnalyzerLockcheck,
		AnalyzerNopanic,
	}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
