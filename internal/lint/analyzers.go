package lint

// Severity assignment for the suite: "error" analyzers (nopanic, lockcheck,
// ctxbound, goroleak, errdrop, atomicmix) guard invariants whose violation
// is a direct safety defect — a panic in the hot path, a leaked goroutine,
// a masked failure, a data race, a held lock. "warning" analyzers (floateq,
// detrand) guard replay and review discipline. Both tiers gate
// scripts/verify.sh — the tier is for CI dashboards and the -fail-on
// escape hatch, not a license to ignore.

// All returns the full rpnlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerAtomicmix,
		AnalyzerCtxbound,
		AnalyzerDetrand,
		AnalyzerErrdrop,
		AnalyzerFloateq,
		AnalyzerGoroleak,
		AnalyzerLockcheck,
		AnalyzerNopanic,
	}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
