package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// fixtureMod returns the loader fixture module root (a tiny module with an
// in-tree dependency edge, a type-error package, and vendor/testdata
// directories that must be excluded).
func fixtureMod(t testing.TB) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func loadFixtureMod(t testing.TB) (*lint.Loader, string) {
	t.Helper()
	l, modPath, err := lint.NewModuleLoader(fixtureMod(t))
	if err != nil {
		t.Fatal(err)
	}
	return l, modPath
}

func pkgPaths(pkgs []*lint.Package) []string {
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	return paths
}

func TestLoadPatternsExcludesVendorAndTestdata(t *testing.T) {
	l, modPath := loadFixtureMod(t)
	pkgs, err := l.LoadPatterns(fixtureMod(t), modPath, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	got := pkgPaths(pkgs)
	want := []string{"fixturemod/a", "fixturemod/b", "fixturemod/typeerr"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("LoadPatterns(./...) = %v, want %v (vendor/ and testdata/ excluded)", got, want)
	}
}

func TestLoadSkipsTestFiles(t *testing.T) {
	// a/skip_test.go is not valid Go; loading succeeds only if the loader
	// never parses _test.go files.
	l, _ := loadFixtureMod(t)
	pkg, err := l.Load("fixturemod/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("fixturemod/a has %d files, want 1 (a.go only)", len(pkg.Files))
	}
}

func TestLoadTypeErrorPackageStillAnalyzed(t *testing.T) {
	l, _ := loadFixtureMod(t)
	pkg, err := l.Load("fixturemod/typeerr")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("fixturemod/typeerr loaded with no TypeErrors; fixture should fail type-checking")
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{lint.AnalyzerNopanic})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("nopanic reported nothing for a type-error package; analyzers must still run on best-effort info")
	}
	if !strings.Contains(diags[0].Message, "panic") {
		t.Errorf("unexpected diagnostic %q", diags[0])
	}
}

func TestLoadUnresolvableImportPath(t *testing.T) {
	l, _ := loadFixtureMod(t)
	if _, err := l.Load("no/such/package"); err == nil {
		t.Fatal("Load of an unresolvable import path should fail")
	}
}

func TestLoadRejectsImportCycle(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "cycmod"))
	if err != nil {
		t.Fatal(err)
	}
	for name, load := range map[string]func(l *lint.Loader, modPath string) error{
		"serial": func(l *lint.Loader, modPath string) error {
			_, err := l.LoadPatterns(root, modPath, []string{"./..."})
			return err
		},
		"parallel": func(l *lint.Loader, modPath string) error {
			_, err := l.LoadPatternsParallel(root, modPath, []string{"./..."}, 4)
			return err
		},
	} {
		t.Run(name, func(t *testing.T) {
			l, modPath, err := lint.NewModuleLoader(root)
			if err != nil {
				t.Fatal(err)
			}
			err = load(l, modPath)
			if err == nil {
				t.Fatal("loading an import cycle should fail")
			}
			if !strings.Contains(err.Error(), "cycle") {
				t.Errorf("error %q does not mention the cycle", err)
			}
		})
	}
}

func TestLoadPatternsParallelMatchesSerial(t *testing.T) {
	serialLoader, modPath := loadFixtureMod(t)
	serial, err := serialLoader.LoadPatterns(fixtureMod(t), modPath, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	parallelLoader, _ := loadFixtureMod(t)
	parallel, err := parallelLoader.LoadPatternsParallel(fixtureMod(t), modPath, []string{"./..."}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pkgPaths(parallel), pkgPaths(serial); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("parallel packages %v, serial packages %v", got, want)
	}
	sres, err := lint.Run(serial, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	pres, err := lint.Run(parallel, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	format := func(diags []lint.Diagnostic, root string) string {
		var b strings.Builder
		for _, d := range diags {
			rel, err := filepath.Rel(root, d.Pos.Filename)
			if err != nil {
				rel = d.Pos.Filename
			}
			b.WriteString(rel)
			b.WriteString(": ")
			b.WriteString(d.Message)
			b.WriteString("\n")
		}
		return b.String()
	}
	if got, want := format(pres.Diagnostics, fixtureMod(t)), format(sres.Diagnostics, fixtureMod(t)); got != want {
		t.Errorf("parallel diagnostics differ from serial:\nparallel:\n%swant:\n%s", got, want)
	}
}

// BenchmarkRunAnalyzers loads the repository itself and runs the full
// analyzer suite, comparing the serial loader against the parallel one.
// Each iteration uses a fresh loader so the type-check work is actually
// repeated; most of the cost is source-importing the standard library.
func BenchmarkRunAnalyzers(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	bench := func(b *testing.B, load func(l *lint.Loader, modPath string) ([]*lint.Package, error)) {
		for i := 0; i < b.N; i++ {
			l, modPath, err := lint.NewModuleLoader(root)
			if err != nil {
				b.Fatal(err)
			}
			pkgs, err := load(l, modPath)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := lint.Run(pkgs, lint.All()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		bench(b, func(l *lint.Loader, modPath string) ([]*lint.Package, error) {
			return l.LoadPatterns(root, modPath, []string{"./..."})
		})
	})
	b.Run("parallel", func(b *testing.B) {
		bench(b, func(l *lint.Loader, modPath string) ([]*lint.Package, error) {
			return l.LoadPatternsParallel(root, modPath, []string{"./..."}, 0)
		})
	})
}
