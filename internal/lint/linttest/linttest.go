// Package linttest is an analysistest-style harness for the rpnlint
// analyzers: it loads a fixture package from a testdata/src tree, runs one
// analyzer over it, and checks the findings against `// want "regexp"`
// comments placed on the offending lines. Lines with no want comment must
// produce no finding, so //lint:allow suppressions are verified by writing
// a violation with an allow comment and no want expectation.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var (
	loaderMu sync.Mutex
	loaders  = map[string]*lint.Loader{}
)

func treeLoader(srcRoot string) *lint.Loader {
	loaderMu.Lock()
	defer loaderMu.Unlock()
	if l, ok := loaders[srcRoot]; ok {
		return l
	}
	l := lint.NewTreeLoader(srcRoot)
	loaders[srcRoot] = l
	return l
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)
var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads srcRoot/pkgPath, applies the analyzer, and reports every
// mismatch between findings and want comments as test errors.
func Run(t *testing.T, srcRoot string, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	pkg, err := treeLoader(srcRoot).Load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", pkgPath, pkg.TypeErrors)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	// expected: "file:line" -> regexes from want comments.
	expected := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
					rx, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, q[1], err)
					}
					expected[key] = append(expected[key], rx)
				}
			}
		}
	}

	matched := map[string][]bool{}
	for key, rxs := range expected {
		matched[key] = make([]bool, len(rxs))
	}
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		ok := false
		for i, rx := range expected[key] {
			if !matched[key][i] && rx.MatchString(d.Message) {
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s", d)
		}
	}
	for key, rxs := range expected {
		for i, rx := range rxs {
			if !matched[key][i] {
				t.Errorf("%s: expected finding matching %q, got none", key, rx)
			}
		}
	}
	if t.Failed() {
		var lines []string
		for _, d := range diags {
			suffix := ""
			if d.Suppressed {
				suffix = " [suppressed]"
			}
			lines = append(lines, "  "+d.String()+suffix)
		}
		t.Logf("all findings for %s on %s:\n%s", a.Name, pkgPath, strings.Join(lines, "\n"))
	}
}
