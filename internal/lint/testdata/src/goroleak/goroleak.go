// Package goroleak is the fixture suite for the goroleak analyzer: every
// `go` statement must have a reachable cancellation or completion path.
package goroleak

import (
	"context"
	"sync"
)

type pool struct {
	jobs chan int
	wg   sync.WaitGroup
	done chan struct{}
}

// Receiving from a channel is a cancellation point.
func spawnReceiver(p *pool) {
	go func() { // ok: blocks on p.done
		<-p.done
	}()
}

// Sending is a completion handoff the spawner can join on.
func spawnSender(results chan int) {
	go func() { // ok: result send
		results <- 1
	}()
}

// WaitGroup Done makes the goroutine joinable.
func spawnJoinable(p *pool) {
	p.wg.Add(1)
	go func() { // ok: wg.Done
		defer p.wg.Done()
		work()
	}()
}

// Ranging over a channel terminates when the spawner closes it.
func (p *pool) worker() {
	for j := range p.jobs {
		_ = j
	}
}

// Spawning a same-package method is audited through its body.
func (p *pool) start() {
	go p.worker() // ok: worker ranges over p.jobs
}

// An intermediate same-package call is followed one level deep.
func (p *pool) startIndirect() {
	go func() { // ok: worker (called below) ranges over p.jobs
		p.worker()
	}()
}

// Passing a context to the callee delegates cancellation.
func spawnDelegated(ctx context.Context) {
	go run(ctx) // ok: ctx handed to the callee
}

func run(ctx context.Context) {
	<-ctx.Done()
}

// close(ch) is a completion signal to the spawner.
func spawnCloser(done chan struct{}) {
	go func() { // ok: closes done on exit
		defer close(done)
		work()
	}()
}

func spawnLeak() {
	go func() { // want "no reachable cancellation or completion path"
		for {
			work()
		}
	}()
}

func leakLoop() {
	for {
		work()
	}
}

func spawnNamedLeak() {
	go leakLoop() // want "no reachable cancellation or completion path"
}

// A context that is merely referenced, never consumed or forwarded, does
// not make the goroutine cancellable (the case ctxbound misses).
func spawnDecorative(ctx context.Context) {
	go func() { // want "no reachable cancellation or completion path"
		_ = ctx
		for {
			work()
		}
	}()
}

// Suppression: the allow comment silences the finding (no want here).
func spawnSuppressed() {
	go leakLoop() //lint:allow(goroleak) fixture: documented fire-and-forget
}

func work() {}
