// Package errdropoff proves errdrop stays silent for packages outside
// ErrdropPackages: same drops as the errdrop fixture, zero want comments.
package errdropoff

import "errors"

func fail() error { return errors.New("boom") }

func Unregistered() {
	fail()
	_ = fail()
}
