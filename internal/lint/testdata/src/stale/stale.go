// Package stale seeds the stale-suppression audit fixtures: every
// directive below suppresses nothing. The driver's -stale flag must flag
// all of them; nothing here is a finding, so there are no want comments.
package stale

// Quiet violates no invariant, so the allowance above it is dead weight.
//lint:allow(nopanic)
func Quiet() int {
	return 1 //lint:allow(nosuch) unknown analyzer name can never suppress
}
