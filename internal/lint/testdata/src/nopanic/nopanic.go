// Package nopanic is a fixture: library code that panics or calls
// log.Fatal, with allowlisted-helper and suppressed counterexamples.
package nopanic

import (
	"fmt"
	"log"
)

func Bad(n int) {
	if n < 0 {
		panic("negative") // want "panic in library code"
	}
	log.Fatalf("n=%d", n) // want "log.Fatalf in library code"
}

func BadFatal() {
	log.Fatal("boom") // want "log.Fatal in library code"
}

// checkMatMulShapes matches an entry on NopanicAllowlist, so its panic is
// sanctioned.
func checkMatMulShapes(m, k int) {
	if m != k {
		panic(fmt.Sprintf("shape %d vs %d", m, k))
	}
}

// Invariant demonstrates the suppression comment on a genuine
// programmer-error invariant.
func Invariant(ok bool) {
	if !ok {
		panic("broken invariant") //lint:allow(nopanic) documented invariant
	}
}

// Good is the steered-toward form: a returned error.
func Good(n int) error {
	if n < 0 {
		return fmt.Errorf("nopanic: negative %d", n)
	}
	return nil
}

var _ = checkMatMulShapes
