// Command mainpkg is a fixture: panic and log.Fatal are permitted in
// package main, so this file expects no findings.
package main

import "log"

func run() error { return nil }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	panic("main packages may panic")
}
