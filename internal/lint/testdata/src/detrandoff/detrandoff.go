// Package detrandoff is a fixture proving detrand stays silent for
// packages outside DetrandPackages: same violations as the detrand
// fixture, zero want comments.
package detrandoff

import (
	"math/rand"
	"time"
)

func Unregistered() (int, time.Time) {
	return rand.Intn(10), time.Now()
}
