// Package atomicmix is the fixture suite for the atomicmix analyzer: a
// field accessed through sync/atomic anywhere must be accessed through
// sync/atomic everywhere.
package atomicmix

import "sync/atomic"

type counter struct {
	hits   int64
	misses int64
	// plain is never touched atomically; plain access is fine.
	plain int64
}

func (c *counter) hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) readGood() int64 {
	return atomic.LoadInt64(&c.hits) // ok: atomic read
}

func (c *counter) readBad() int64 {
	return c.hits // want "accessed with atomic.AddInt64 elsewhere"
}

func (c *counter) writeBad() {
	c.hits = 0 // want "accessed with atomic.AddInt64 elsewhere"
}

func (c *counter) plainField() int64 {
	c.misses = c.misses + 1 // ok: misses is never accessed atomically
	return c.plain
}

// Composite literal keys are pre-publication initialization, not races.
func newCounter() *counter {
	return &counter{hits: 0}
}

var global int64

func bumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func readGlobalBad() int64 {
	return global // want "accessed with atomic.AddInt64 elsewhere"
}

func casGood(c *counter) bool {
	return atomic.CompareAndSwapInt64(&c.hits, 0, 1) // ok: atomic op
}

// Typed atomics name their cell through the receiver; the &local passed to
// Pointer.Store is a plain value, not shared atomic state.
type holder struct {
	obs atomic.Pointer[int]
}

func (h *holder) set(o int) {
	if o == 0 {
		h.obs.Store(nil)
		return
	}
	h.obs.Store(&o) // ok: o is not an atomic cell
}

// Suppression: the allow comment silences the finding (no want here).
func suppressed(c *counter) int64 {
	return c.hits //lint:allow(atomicmix) fixture: single-goroutine teardown read
}
