// Package errdrop is the fixture suite for the errdrop analyzer:
// discarded error returns in failure-critical packages.
package errdrop

import (
	"fmt"
	"hash"
	"strings"
)

func fail() error { return nil }

func pair() (int, error) { return 0, nil }

// sink is a writer whose Close carries the flush error.
type sink struct{}

func (sink) Write(p []byte) (int, error) { return len(p), nil }
func (sink) Close() error                { return nil }

// reader only closes; its deferred Close is idiomatic.
type reader struct{}

func (reader) Read(p []byte) (int, error) { return 0, nil }
func (reader) Close() error               { return nil }

func bareCall() {
	fail() // want "call discards its error result"
}

func blankAssign() {
	_ = fail() // want "error result discarded with _"
}

func blankTuple() {
	n, _ := pair() // want "error result discarded with _"
	_ = n
}

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	n, err := pair()
	_ = n
	return err
}

func deferredWriterClose(s sink) error {
	defer s.Close() // want "deferred Close on a writer discards the flush error"
	_, err := s.Write(nil)
	return err
}

func deferredReaderClose(r reader) {
	defer r.Close() // ok: not a writer
}

func exemptFmt() {
	fmt.Println("telemetry push failed") // ok: fmt print family is exempt
}

func exemptBuilder() {
	var b strings.Builder
	b.WriteString("x") // ok: strings.Builder never fails
	_ = b.String()
}

func exemptFprintfBuilder() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", 1) // ok: Fprintf to a never-failing writer
	return b.String()
}

func fprintfFailingWriter(s sink) {
	fmt.Fprintf(s, "n=%d", 1) // want "call discards its error result"
}

func exemptHashWrite(h hash.Hash) {
	h.Write([]byte("x")) // ok: hash.Hash.Write never returns an error
}

// Suppression: the allow comment silences the finding (no want here).
func suppressed() {
	_ = fail() //lint:allow(errdrop) fixture: error is documented unreachable
}
