// Package ctxbound is a fixture: goroutines without a completion signal
// and goroutines capturing loop variables, plus WaitGroup-joined,
// context-cancelled, channel-stopped, and suppressed counterexamples. The
// test registers this package path in lint.CtxboundPackages before
// running.
package ctxbound

import (
	"context"
	"sync"
)

func fire(items []int, process func(int)) {
	for _, it := range items {
		go func() { // want "no done/context/WaitGroup signal" "captures loop variable"
			process(it)
		}()
	}
}

func orphan(tick func()) {
	go func() { tick() }() // want "no done/context/WaitGroup signal"
}

func forLoop(n int, process func(int)) {
	for i := 0; i < n; i++ {
		go func() { // want "no done/context/WaitGroup signal" "captures loop variable"
			process(i)
		}()
	}
}

func joined(items []int, process func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			process(v)
		}(it)
	}
	wg.Wait()
}

func cancellable(ctx context.Context, tick func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				tick()
			}
		}
	}()
}

func channelStop(done chan struct{}, tick func()) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tick()
			}
		}
	}()
}

func suppressed(flush func()) {
	//lint:allow(ctxbound) fire-and-forget telemetry flush at shutdown
	go func() { flush() }()
}

var _ = fire
var _ = orphan
var _ = forLoop
var _ = joined
var _ = cancellable
var _ = channelStop
var _ = suppressed
