// Package store is a fixture dependency: a mutex-guarded struct with an
// exported field, the violation target for lockcheck's guarded-field
// check when accessed from the parent fixture package.
package store

import "sync"

// Store guards Count with Mu; outside packages must go through Incr/Get.
type Store struct {
	Mu    sync.Mutex
	Count int
}

// Incr bumps the counter under the lock.
func (s *Store) Incr() {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	s.Count++
}

// Get reads the counter under the lock.
func (s *Store) Get() int {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	return s.Count
}
