// Package lockcheck is a fixture: lock-by-value copies, Lock calls with
// no reachable Unlock, and cross-package guarded-field access, plus
// compliant and suppressed counterexamples.
package lockcheck

import (
	"sync"

	"lockcheck/store"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func byValue(c counter) int { // want "parameter passes a lock by value"
	return c.n
}

func copyAssign(c *counter) int {
	snapshot := *c // want "assignment copies a lock"
	return snapshot.n
}

func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // want "range value copies a lock"
		total += c.n
	}
	return total
}

func noUnlock(c *counter) {
	c.mu.Lock() // want "no reachable Unlock"
	c.n++
}

func rlockNoRUnlock(mu *sync.RWMutex) int {
	mu.RLock() // want "no reachable RUnlock"
	return 0
}

func deferred(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func pairedInline(c *counter) int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

func guarded(s *store.Store) int {
	return s.Count // want "guarded by a sibling mutex"
}

func throughMethods(s *store.Store) int {
	s.Incr()
	return s.Get()
}

func suppressedCopy(c *counter) int {
	snapshot := *c //lint:allow(lockcheck) snapshot of an idle counter in a test helper
	return snapshot.n
}

var _ = byValue
var _ = copyAssign
var _ = rangeCopy
var _ = noUnlock
var _ = rlockNoRUnlock
var _ = deferred
var _ = pairedInline
var _ = guarded
var _ = throughMethods
var _ = suppressedCopy
