// Package floateq is a fixture: exact floating-point comparisons in
// several spellings, plus epsilon-based and suppressed counterexamples.
package floateq

// Temp exercises named types whose underlying type is a float.
type Temp float64

func Bad(a, b float64, f float32, t Temp) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	if f != 0 { // want "floating-point != comparison"
		return true
	}
	return t == Temp(a) // want "floating-point == comparison"
}

func Suppressed(w float64) bool {
	return w == 0 //lint:allow(floateq) pruned weights are exact zeros
}

func Good(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func Ints(a, b int) bool { return a == b }
