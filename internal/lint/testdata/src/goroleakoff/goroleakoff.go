// Package goroleakoff proves goroleak stays silent for packages outside
// GoroleakPackages: same leak as the goroleak fixture, zero want comments.
package goroleakoff

func Unregistered(tick func()) {
	go func() {
		for {
			tick()
		}
	}()
}
