// Package detrand is a fixture: unseeded global rand draws and bare
// time.Now() calls, plus seeded-RNG, clock-seam, and suppressed
// counterexamples. The test registers this package path in
// lint.DetrandPackages before running.
package detrand

import (
	"math/rand"
	"time"
)

// now is the injectable clock seam the analyzer steers code toward.
var now = time.Now

func Bad() (int, time.Time) {
	n := rand.Intn(10)    // want "unseeded rand.Intn"
	return n, time.Now() // want "bare time.Now"
}

func BadFloat() float64 {
	return rand.Float64() // want "unseeded rand.Float64"
}

func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "unseeded rand.Shuffle"
}

func Good(seed int64) (int, time.Time) {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10), now()
}

func Suppressed() time.Time {
	return time.Now() //lint:allow(detrand) wall-clock for operator-facing log lines only
}
