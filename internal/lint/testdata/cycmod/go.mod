module cycmod

go 1.22
