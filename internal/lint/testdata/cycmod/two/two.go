// Package two closes the import cycle with one.
package two

import "cycmod/one"

// B references the cycle partner.
const B = one.A
