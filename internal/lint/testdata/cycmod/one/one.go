// Package one imports two, which imports one: an import cycle both
// loaders must reject with a clear error instead of deadlocking.
package one

import "cycmod/two"

// A references the cycle partner.
const A = two.B
