// Package a exercises in-tree import resolution: it depends on
// fixturemod/b, which the loader must type-check first.
package a

import "fixturemod/b"

// Double returns twice the shared constant.
func Double() int { return 2 * b.Value }
