this file is not valid Go; the loader must never parse _test.go files
