// Package b is a leaf dependency of fixturemod/a.
package b

// Value is the shared constant.
const Value = 21
