// Package typeerr fails to type-check. The loader must still return the
// package (TypeErrors non-empty) so analyzers can run on best-effort
// information — Boom's panic below must remain visible to nopanic.
package typeerr

var broken int = "not an int"

// Boom panics unconditionally; nopanic must flag it even though the
// package has type errors.
func Boom() {
	panic("boom")
}
