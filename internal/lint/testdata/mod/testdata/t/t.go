// Package t lives under a nested testdata/ directory and must be
// excluded from pattern expansion, matching go tooling convention.
package t

// Fixture panics; the loader must never see it.
func Fixture() {
	panic("testdata must be excluded")
}
