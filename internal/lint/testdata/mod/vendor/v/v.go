// Package v lives under vendor/ and must never be walked by pattern
// expansion: vendored sources are third-party code outside the suite's
// invariants. The panic below would be a nopanic finding if loaded.
package v

// Vendored panics; the loader must never see it.
func Vendored() {
	panic("vendored code must be excluded")
}
