package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrdropPackages lists the import paths (exact, or as a prefix of
// path+"/") where a silently dropped error is a masked failed restore: the
// reversible core, the fleet fan-out, the watchdog, the chaos harness, and
// the telemetry pipeline. Everywhere else (examples, experiment tables,
// CLIs) the cost/benefit of exhaustive error plumbing is different and the
// standard toolchain rules apply.
var ErrdropPackages = []string{
	"repro/internal/core",
	"repro/internal/fleet",
	"repro/internal/health",
	"repro/internal/fault",
	"repro/internal/telemetry",
	// Covered by the telemetry prefix rule, listed explicitly: the window
	// tier's persistence store and key math must stay deterministic and
	// goroutine-clean (time flows in as parameters, never from time.Now).
	"repro/internal/telemetry/window",
	// Covered by the telemetry prefix rule, listed explicitly because the
	// exporter's retry path is where a dropped error becomes silent data
	// loss.
	"repro/internal/telemetry/otlp",
	// A dropped error on the ingest wire is a frame silently lost between
	// a vehicle and the fleet — every socket and encode error must be
	// handled or visibly annotated.
	"repro/internal/ingest",
}

// AnalyzerErrdrop flags discarded error returns in registered packages
// (ErrdropPackages): a call used as a bare statement whose results include
// an error, an error result assigned to the blank identifier, and a
// deferred Close() on a value that implements io.Writer (the deferred form
// throws away the flush error — exactly the write the caller thought
// succeeded). A drop that is genuinely safe must say so with a
// //lint:allow(errdrop) comment carrying the reason.
//
// Exempt by design (documented in docs/LINT.md): the fmt print family
// (Fprint* only when the destination writer never fails), methods on
// strings.Builder / bytes.Buffer, and hash.Hash-shaped receivers, whose
// error results are documented to be always nil or not actionable.
var AnalyzerErrdrop = &Analyzer{
	Name:     "errdrop",
	Severity: SeverityError,
	Doc: "in failure-critical packages (see ErrdropPackages), flag bare calls that discard an error " +
		"result, error results assigned to _, and deferred Close() on writers.",
	Run: runErrdrop,
}

func runErrdrop(pass *Pass) error {
	if !errdropApplies(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkBareCall(pass, call)
				}
			case *ast.AssignStmt:
				checkBlankErrors(pass, n)
			case *ast.DeferStmt:
				checkDeferredClose(pass, n.Call)
			}
			return true
		})
	}
	return nil
}

func errdropApplies(pkgPath string) bool {
	for _, p := range ErrdropPackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// isErrorType reports whether t can carry an error: the error interface
// itself or any interface that includes it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface) || types.Identical(iface, errIface)
}

// resultErrs returns the indices of error-typed results in the call's
// result list (empty when none, or when call is a type conversion).
func resultErrs(pass *Pass, call *ast.CallExpr) []int {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return nil
	}
	var idxs []int
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				idxs = append(idxs, i)
			}
		}
		return idxs
	}
	if isErrorType(t) {
		idxs = append(idxs, 0)
	}
	return idxs
}

// errdropExempt reports whether the callee's dropped error is sanctioned:
// the fmt print family (including Fprint* when the destination is a
// never-failing writer), methods on strings.Builder / bytes.Buffer, and
// methods on hash.Hash-shaped receivers — all documented to return a nil
// or non-actionable error.
func errdropExempt(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		if strings.Contains(fn.Name(), "Print") {
			return true
		}
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			return neverFailsWriter(pass.TypesInfo.TypeOf(call.Args[0]))
		}
	}
	switch fn.Pkg().Path() + "." + recvNamed(fn) {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if recv := pass.TypesInfo.TypeOf(sel.X); recv != nil && isHashShaped(recv) {
			return true
		}
	}
	return false
}

// neverFailsWriter reports whether t is a writer whose Write is documented
// never to return an error: strings.Builder, bytes.Buffer, or a hash.Hash
// (all detected through at most one pointer indirection).
func neverFailsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
		case "strings.Builder", "bytes.Buffer":
			return true
		}
	}
	return isHashShaped(t)
}

// isHashShaped reports whether t's method set matches hash.Hash (Write +
// Sum([]byte) []byte + Reset() + Size() int + BlockSize() int), detected
// structurally so the framework needs no importer access to hash.
func isHashShaped(t types.Type) bool {
	need := map[string]bool{"Write": false, "Sum": false, "Reset": false, "Size": false, "BlockSize": false}
	for _, probe := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(probe)
		for i := 0; i < ms.Len(); i++ {
			name := ms.At(i).Obj().Name()
			if _, wanted := need[name]; wanted {
				need[name] = true
			}
		}
	}
	for _, ok := range need {
		if !ok {
			return false
		}
	}
	return true
}

// calleeFunc resolves the called function object, or nil for func values
// and builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkBareCall flags an expression-statement call that returns an error
// nobody looks at.
func checkBareCall(pass *Pass, call *ast.CallExpr) {
	if len(resultErrs(pass, call)) == 0 || errdropExempt(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "call discards its error result; handle the error (or suppress with a reasoned //lint:allow(errdrop))")
}

// checkBlankErrors flags error results assigned to _.
func checkBlankErrors(pass *Pass, as *ast.AssignStmt) {
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	// Tuple form: a, _ := f() — one call, results map 1:1 onto the LHS.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || errdropExempt(pass, call) {
			return
		}
		for _, i := range resultErrs(pass, call) {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				pass.Reportf(as.Lhs[i].Pos(), "error result discarded with _; handle the error (or suppress with a reasoned //lint:allow(errdrop))")
			}
		}
		return
	}
	// Parallel form: _ = f(), or a, _ = f(), g().
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || errdropExempt(pass, call) {
			continue
		}
		if len(resultErrs(pass, call)) > 0 {
			pass.Reportf(as.Lhs[i].Pos(), "error result discarded with _; handle the error (or suppress with a reasoned //lint:allow(errdrop))")
		}
	}
}

// checkDeferredClose flags `defer x.Close()` when x implements io.Writer:
// the deferred error vanishes, and for writers that error is the flush.
func checkDeferredClose(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return
	}
	if len(resultErrs(pass, call)) == 0 {
		return
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil || !implementsWriter(recv) {
		return
	}
	pass.Reportf(call.Pos(), "deferred Close on a writer discards the flush error; check Close explicitly on the success path")
}

// implementsWriter reports whether t (or *t) has a Write([]byte) (int,
// error) method — the io.Writer shape, detected structurally so the lint
// framework needs no importer access to io.
func implementsWriter(t types.Type) bool {
	for _, probe := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(probe)
		for i := 0; i < ms.Len(); i++ {
			fn, ok := ms.At(i).Obj().(*types.Func)
			if !ok || fn.Name() != "Write" {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
				continue
			}
			if sl, ok := sig.Params().At(0).Type().(*types.Slice); ok {
				if b, ok := sl.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
					if isErrorType(sig.Results().At(1).Type()) {
						return true
					}
				}
			}
		}
	}
	return false
}
