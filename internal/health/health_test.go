package health

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/perception"
	"repro/internal/safety"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// telemetry.Hooks must keep satisfying the observer seams the stack wires
// it into structurally; this package already imports both sides, so the
// compile-time check lives here.
var (
	_ Observer                = (*telemetry.Hooks)(nil)
	_ core.StoreObserver      = (*telemetry.Hooks)(nil)
	_ core.TransitionObserver = (*telemetry.Hooks)(nil)
)

// testConfig keeps trajectories short enough to walk by hand.
func testConfig() Config {
	return Config{
		Deadline:        10 * time.Millisecond,
		DegradeAfter:    1,
		QuarantineAfter: 2,
		RecoverAfter:    3,
		QuarantineDwell: 4,
		ProbationAfter:  2,
	}
}

// stubRestorer records emergency restores and can be made to fail.
type stubRestorer struct {
	calls []int
	err   error
}

func (r *stubRestorer) ApplyLevel(target int) error {
	r.calls = append(r.calls, target)
	return r.err
}

// stubObserver records the monitor's telemetry stream.
type stubObserver struct {
	faults      []string // "reason/restored"
	transitions []string // "from->to"
}

func (o *stubObserver) ObserveHealthFault(reason string, restored bool) {
	o.faults = append(o.faults, fmt.Sprintf("%s/%v", reason, restored))
}

func (o *stubObserver) ObserveHealthState(from, to int) {
	o.transitions = append(o.transitions, fmt.Sprintf("%d->%d", from, to))
}

func TestMonitorFullTrajectory(t *testing.T) {
	m := NewMonitor(testConfig())
	rst := &stubRestorer{}
	obs := &stubObserver{}
	if err := m.Register("car1", rst, obs); err != nil {
		t.Fatal(err)
	}

	// Fault 1 (NaN): Healthy → Degraded, with an emergency restore.
	nan := func() (State, string) {
		return m.Observe("car1", 0.5, math.NaN(), 0, nil)
	}
	if st, reason := nan(); st != Degraded || reason != ReasonNaN {
		t.Fatalf("after first NaN: state %v reason %q", st, reason)
	}
	if len(rst.calls) != 1 || rst.calls[0] != 0 {
		t.Fatalf("restore calls %v, want [0]", rst.calls)
	}
	// Faults 2 and 3: Degraded absorbs QuarantineAfter=2 more, then fences.
	if st, _ := nan(); st != Degraded {
		t.Fatalf("after second fault: %v", st)
	}
	if st, _ := nan(); st != Quarantined {
		t.Fatalf("after third fault: %v", st)
	}
	if m.Admissible("car1") {
		t.Fatal("quarantined instance admissible")
	}
	if m.TickAllowed("car1") {
		t.Fatal("quarantined instance may tick")
	}

	// QuarantineDwell=4 gated attempts re-admit to Probation. Gate returns
	// false for every quarantined attempt, including the one that flips the
	// state (re-admission starts with the NEXT frame).
	for i := 0; i < 4; i++ {
		if m.Gate("car1") {
			t.Fatalf("gate %d admitted a quarantined instance", i)
		}
	}
	if st := m.State("car1"); st != Probation {
		t.Fatalf("after dwell: %v", st)
	}
	if !m.Gate("car1") {
		t.Fatal("probation instance not re-admitted")
	}
	if m.TickAllowed("car1") {
		t.Fatal("probation instance may tick")
	}

	// ProbationAfter=2 clean frames promote back to Healthy.
	clean := func() State {
		st, _ := m.Observe("car1", 0.5, 0.1, 0, nil)
		return st
	}
	if st := clean(); st != Probation {
		t.Fatalf("after one clean frame: %v", st)
	}
	if st := clean(); st != Healthy {
		t.Fatalf("after two clean frames: %v", st)
	}

	wantTransitions := []string{"0->0", "0->1", "1->3", "3->2", "2->0"}
	if fmt.Sprint(obs.transitions) != fmt.Sprint(wantTransitions) {
		t.Fatalf("transitions %v, want %v", obs.transitions, wantTransitions)
	}
	for _, f := range obs.faults {
		if f != "nan/true" {
			t.Fatalf("fault record %q, want nan/true", f)
		}
	}
	if len(obs.faults) != 3 {
		t.Fatalf("%d fault records, want 3", len(obs.faults))
	}
}

func TestMonitorDegradedRecovers(t *testing.T) {
	m := NewMonitor(testConfig())
	if err := m.Register("car0", nil, nil); err != nil {
		t.Fatal(err)
	}
	m.ObserveFault("car0", ReasonError)
	if st := m.State("car0"); st != Degraded {
		t.Fatalf("state %v", st)
	}
	// RecoverAfter=3 clean frames heal without quarantine.
	for i := 0; i < 2; i++ {
		if st, _ := m.Observe("car0", 0.5, 0.1, 0, nil); st != Degraded {
			t.Fatalf("clean frame %d: %v", i, st)
		}
	}
	if st, _ := m.Observe("car0", 0.5, 0.1, 0, nil); st != Healthy {
		t.Fatalf("after recovery: %v", st)
	}
	// A fault resets the clean streak.
	m.ObserveFault("car0", ReasonError)
	m.Observe("car0", 0.5, 0.1, 0, nil)
	m.Observe("car0", 0.5, 0.1, 0, nil)
	m.ObserveFault("car0", ReasonError)
	for i := 0; i < 2; i++ {
		m.Observe("car0", 0.5, 0.1, 0, nil)
	}
	if st := m.State("car0"); st != Degraded {
		t.Fatalf("clean streak not reset by interleaved fault: %v", st)
	}
}

func TestMonitorProbationFaultQuarantines(t *testing.T) {
	m := NewMonitor(testConfig())
	rst := &stubRestorer{}
	if err := m.Register("car2", rst, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.ObserveFault("car2", ReasonError)
	}
	for i := 0; i < 4; i++ {
		m.Gate("car2")
	}
	if st := m.State("car2"); st != Probation {
		t.Fatalf("state %v", st)
	}
	if st := m.ObserveFault("car2", ReasonDeadline); st != Quarantined {
		t.Fatalf("probation fault left state %v", st)
	}
	// The deadline fault still ran the emergency restore.
	if len(rst.calls) != 1 {
		t.Fatalf("restore calls %v, want one", rst.calls)
	}
}

func TestMonitorReasonAttribution(t *testing.T) {
	m := NewMonitor(testConfig())
	rst := &stubRestorer{}
	obs := &stubObserver{}
	if err := m.Register("car0", rst, obs); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		conf, unc float64
		elapsed   time.Duration
		err       error
		want      string
		restores  int
	}{
		{0.5, 0.1, 0, errors.New("boom"), ReasonError, 0},
		{math.NaN(), 0.1, 0, nil, ReasonNaN, 1},
		{0.5, 0.1, 20 * time.Millisecond, nil, ReasonDeadline, 1},
		// Error wins over NaN wins over deadline.
		{math.NaN(), 0.1, 20 * time.Millisecond, errors.New("x"), ReasonError, 0},
		{0.5, 0.1, 0, nil, "", 0},
	}
	for i, c := range cases {
		before := len(rst.calls)
		_, reason := m.Observe("car0", c.conf, c.unc, c.elapsed, c.err)
		if reason != c.want {
			t.Fatalf("case %d: reason %q, want %q", i, reason, c.want)
		}
		if got := len(rst.calls) - before; got != c.restores {
			t.Fatalf("case %d: %d restores, want %d", i, got, c.restores)
		}
	}
	// Infinite confidence is as non-finite as NaN.
	if _, reason := m.Observe("car0", math.Inf(1), 0.1, 0, nil); reason != ReasonNaN {
		t.Fatalf("inf confidence reason %q", reason)
	}
}

func TestMonitorFailedRestoreReported(t *testing.T) {
	m := NewMonitor(testConfig())
	rst := &stubRestorer{err: errors.New("store corrupt")}
	obs := &stubObserver{}
	if err := m.Register("car0", rst, obs); err != nil {
		t.Fatal(err)
	}
	m.ObserveFault("car0", ReasonNaN)
	if len(obs.faults) != 1 || obs.faults[0] != "nan/false" {
		t.Fatalf("fault records %v, want [nan/false]", obs.faults)
	}
}

func TestMonitorStoreCorruptQuarantinesPermanently(t *testing.T) {
	m := NewMonitor(testConfig())
	obs := &stubObserver{}
	if err := m.Register("car1", nil, obs); err != nil {
		t.Fatal(err)
	}
	// Store corruption skips Degraded entirely: one observation fences.
	if st := m.ObserveFault("car1", ReasonStoreCorrupt); st != Quarantined {
		t.Fatalf("state after store-corrupt fault: %v", st)
	}
	if fmt.Sprint(obs.faults) != fmt.Sprint([]string{"store-corrupt/false"}) {
		t.Fatalf("fault records %v", obs.faults)
	}
	// No dwell count re-admits: run far past QuarantineDwell=4.
	for i := 0; i < 40; i++ {
		if m.Gate("car1") {
			t.Fatalf("gate %d admitted a permanently quarantined instance", i)
		}
	}
	if st := m.State("car1"); st != Quarantined {
		t.Fatalf("state after dwell attempts: %v (permanent quarantine must never reach probation)", st)
	}
	if m.Admissible("car1") || m.TickAllowed("car1") {
		t.Fatal("permanently quarantined instance still schedulable")
	}
	// A repeat observation while fenced records the fault but emits no
	// duplicate state transition.
	m.ObserveFault("car1", ReasonStoreCorrupt)
	wantTransitions := []string{"0->0", "0->3"}
	if fmt.Sprint(obs.transitions) != fmt.Sprint(wantTransitions) {
		t.Fatalf("transitions %v, want %v", obs.transitions, wantTransitions)
	}
}

func TestMonitorRefusedRestoreEscalatesToStoreCorrupt(t *testing.T) {
	m := NewMonitor(testConfig())
	rst := &stubRestorer{err: fmt.Errorf("core: refusing restore 2→0: %w", core.ErrStoreCorrupt)}
	obs := &stubObserver{}
	if err := m.Register("car0", rst, obs); err != nil {
		t.Fatal(err)
	}
	// The NaN watchdog fires, the emergency restore is refused by the
	// integrity checksum, and the fault escalates: first the triggering
	// reason (unrestored), then the store-corrupt attribution.
	if st := m.ObserveFault("car0", ReasonNaN); st != Quarantined {
		t.Fatalf("state after refused restore: %v", st)
	}
	want := []string{"nan/false", "store-corrupt/false"}
	if fmt.Sprint(obs.faults) != fmt.Sprint(want) {
		t.Fatalf("fault records %v, want %v", obs.faults, want)
	}
	// Permanent: dwell never earns probation.
	for i := 0; i < 20; i++ {
		m.Gate("car0")
	}
	if st := m.State("car0"); st != Quarantined {
		t.Fatalf("state after dwell: %v", st)
	}
	// An ordinarily-failing restore (no ErrStoreCorrupt in the chain) does
	// NOT escalate — that path stays the plain nan/false record.
	m2 := NewMonitor(testConfig())
	obs2 := &stubObserver{}
	if err := m2.Register("car0", &stubRestorer{err: errors.New("transient")}, obs2); err != nil {
		t.Fatal(err)
	}
	if st := m2.ObserveFault("car0", ReasonNaN); st != Degraded {
		t.Fatalf("transient restore failure state: %v", st)
	}
	if fmt.Sprint(obs2.faults) != fmt.Sprint([]string{"nan/false"}) {
		t.Fatalf("fault records %v", obs2.faults)
	}
}

func TestGuardTickClassifiesStoreCorrupt(t *testing.T) {
	pinClock(t, time.Microsecond)
	m := NewMonitor(testConfig())
	obs := &stubObserver{}
	if err := m.Register("car0", nil, obs); err != nil {
		t.Fatal(err)
	}
	st := &scriptedStack{tickErr: fmt.Errorf("governor: apply: %w", core.ErrStoreCorrupt)}
	g := NewGuard("car0", st, m)
	dec, err := g.Tick(0, safety.Assessment{})
	if err != nil || dec != (governor.Decision{}) {
		t.Fatalf("tick %+v, %v", dec, err)
	}
	// One checksum-refused transition is enough to fence the instance for
	// good — no Degraded detour, no dwell-based re-admission.
	if m.State("car0") != Quarantined {
		t.Fatalf("state %v", m.State("car0"))
	}
	if fmt.Sprint(obs.faults) != fmt.Sprint([]string{"store-corrupt/false"}) {
		t.Fatalf("fault records %v", obs.faults)
	}
	for i := 0; i < 20; i++ {
		m.Gate("car0")
	}
	if m.State("car0") != Quarantined {
		t.Fatal("permanent quarantine re-admitted")
	}
}

func TestMonitorRegistration(t *testing.T) {
	m := NewMonitor(Config{})
	if err := m.Register("", nil, nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := m.Register("car0", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("car0", nil, nil); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	// Unregistered names are unmonitored, not fenced.
	if m.State("ghost") != Healthy || !m.Admissible("ghost") || !m.Gate("ghost") || !m.TickAllowed("ghost") {
		t.Fatal("unregistered instance fenced")
	}
	if st := m.ObserveFault("ghost", ReasonError); st != Healthy {
		t.Fatalf("unregistered fault state %v", st)
	}
	states := m.States()
	if len(states) != 1 || states["car0"] != Healthy {
		t.Fatalf("states %v", states)
	}
	// Defaults resolve.
	cfg := m.Config()
	if cfg.Deadline != 150*time.Millisecond || cfg.DegradeAfter != 1 ||
		cfg.QuarantineAfter != 2 || cfg.RecoverAfter != 25 ||
		cfg.QuarantineDwell != 50 || cfg.ProbationAfter != 25 {
		t.Fatalf("defaults %+v", cfg)
	}
}

func TestStateString(t *testing.T) {
	if Healthy.String() != "healthy" || Quarantined.String() != "quarantined" {
		t.Fatalf("state names %q %q", Healthy, Quarantined)
	}
	if int(Quarantined) != telemetry.HealthQuarantined {
		t.Fatal("state codes drifted from telemetry")
	}
}

// scriptedStack is a perception.Stack whose Detect/Tick behavior the test
// scripts call by call.
type scriptedStack struct {
	det     perception.Detection
	detErr  error
	tickErr error
	detects int
	ticks   int
}

func (s *scriptedStack) Detect(*tensor.Tensor) (perception.Detection, error) {
	s.detects++
	return s.det, s.detErr
}

func (s *scriptedStack) Tick(int, safety.Assessment) (governor.Decision, error) {
	s.ticks++
	return governor.Decision{Applied: 2}, s.tickErr
}

func (s *scriptedStack) Current() int          { return 1 }
func (s *scriptedStack) Levels() []*core.Level { return nil }
func (s *scriptedStack) Switches() int         { return 7 }

// pinClock replaces the package clock with one advancing step per read and
// restores it on cleanup.
func pinClock(t *testing.T, step time.Duration) {
	t.Helper()
	orig := now
	base := time.Unix(1000, 0)
	reads := 0
	now = func() time.Time {
		reads++
		return base.Add(time.Duration(reads) * step)
	}
	t.Cleanup(func() { now = orig })
}

func TestGuardAbsorbsFaultsIntoFailSafe(t *testing.T) {
	pinClock(t, time.Microsecond)
	m := NewMonitor(testConfig())
	st := &scriptedStack{det: perception.Detection{Obstacle: false, Confidence: 0.9, Uncertainty: 0.2}}
	g := NewGuard("car1", st, m)
	if err := m.Register("car1", nil, nil); err != nil {
		t.Fatal(err)
	}

	// Clean frame passes through untouched.
	det, err := g.Detect(nil)
	if err != nil || det != st.det {
		t.Fatalf("clean frame: %+v, %v", det, err)
	}

	// A stack error becomes FailSafe, not an error — the loop must keep
	// driving.
	st.detErr = errors.New("sensor gone")
	det, err = g.Detect(nil)
	if err != nil {
		t.Fatalf("guard leaked error %v", err)
	}
	if det != FailSafe {
		t.Fatalf("faulted frame %+v, want FailSafe", det)
	}
	if got := m.State("car1"); got != Degraded {
		t.Fatalf("state %v after fault", got)
	}

	// A NaN detection is absorbed too, even with no error.
	st.detErr = nil
	st.det.Confidence = math.NaN()
	if det, _ := g.Detect(nil); det != FailSafe {
		t.Fatalf("NaN frame %+v, want FailSafe", det)
	}

	// Third fault quarantines; frames stop reaching the stack.
	g.Detect(nil)
	if g.State() != Quarantined {
		t.Fatalf("state %v", g.State())
	}
	before := st.detects
	if det, err := g.Detect(nil); err != nil || det != FailSafe {
		t.Fatalf("quarantined frame %+v, %v", det, err)
	}
	if st.detects != before {
		t.Fatal("quarantined frame reached the stack")
	}

	// Delegation.
	if g.Current() != 1 || g.Switches() != 7 || g.Levels() != nil {
		t.Fatal("delegation broken")
	}
}

func TestGuardDetectDeadline(t *testing.T) {
	// Every clock read advances 20ms > the 10ms test deadline, so each
	// Detect (two reads) observes a breach.
	pinClock(t, 20*time.Millisecond)
	m := NewMonitor(testConfig())
	rst := &stubRestorer{}
	if err := m.Register("car0", rst, nil); err != nil {
		t.Fatal(err)
	}
	st := &scriptedStack{det: perception.Detection{Confidence: 0.9, Uncertainty: 0.2}}
	g := NewGuard("car0", st, m)
	if det, err := g.Detect(nil); err != nil || det != FailSafe {
		t.Fatalf("slow frame %+v, %v", det, err)
	}
	if m.State("car0") != Degraded {
		t.Fatalf("state %v", m.State("car0"))
	}
	if len(rst.calls) != 1 {
		t.Fatalf("restore calls %v", rst.calls)
	}
}

func TestGuardTickWatchdog(t *testing.T) {
	pinClock(t, 20*time.Millisecond)
	m := NewMonitor(testConfig())
	rst := &stubRestorer{}
	if err := m.Register("car0", rst, nil); err != nil {
		t.Fatal(err)
	}
	st := &scriptedStack{}
	g := NewGuard("car0", st, m)

	// A tick slower than the deadline is a fault with the emergency
	// restore — the stuck-transition path.
	dec, err := g.Tick(0, safety.Assessment{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Applied != 2 {
		t.Fatalf("decision %+v not delegated", dec)
	}
	if m.State("car0") != Degraded || len(rst.calls) != 1 {
		t.Fatalf("state %v restores %v", m.State("car0"), rst.calls)
	}
	// Degraded instances keep ticking (the governor re-adapts them)…
	g.Tick(1, safety.Assessment{})
	if st.ticks != 2 {
		t.Fatalf("ticks %d", st.ticks)
	}
	// …until quarantined: then ticks are suppressed entirely.
	m.ObserveFault("car0", ReasonError)
	if m.State("car0") != Quarantined {
		t.Fatalf("state %v", m.State("car0"))
	}
	dec, err = g.Tick(2, safety.Assessment{})
	if err != nil || dec != (governor.Decision{}) {
		t.Fatalf("fenced tick %+v, %v", dec, err)
	}
	if st.ticks != 2 {
		t.Fatal("fenced tick reached the stack")
	}
}

func TestGuardTickErrorAbsorbed(t *testing.T) {
	pinClock(t, time.Microsecond)
	m := NewMonitor(testConfig())
	if err := m.Register("car0", nil, nil); err != nil {
		t.Fatal(err)
	}
	st := &scriptedStack{tickErr: errors.New("governor wedged")}
	g := NewGuard("car0", st, m)
	dec, err := g.Tick(0, safety.Assessment{})
	if err != nil {
		t.Fatalf("guard leaked tick error %v", err)
	}
	if dec != (governor.Decision{}) {
		t.Fatalf("errored tick returned %+v", dec)
	}
	if m.State("car0") != Degraded {
		t.Fatalf("state %v", m.State("car0"))
	}
}
