package health

import (
	"context"
	"sync"
	"time"
)

// ScrubTarget is the repair seam the Scrubber drives: re-enforce the
// current level's masks on the live weights and report how many pruned
// positions were repaired. Both *fleet.Instance and *core.ReversibleModel
// satisfy it.
type ScrubTarget interface {
	Scrub() int64
}

// Scrubber periodically runs Scrub on every tracked instance the monitor
// holds at Degraded. A degraded instance faulted recently — if the fault
// was silent corruption of pruned positions, the scrub repairs it before
// the fault streak reaches quarantine; Healthy instances are left alone
// (their integrity is not in doubt, and a scrub takes the instance lock),
// and Quarantined/Probation instances hold the emergency-restored dense
// level, where there are no pruned positions to repair.
//
// The background loop is cancellable and joinable: Start derives a
// sub-context, the loop selects on its Done channel, and Stop cancels then
// waits — the goroutine can neither leak nor outlive the Scrubber (the
// goroleak analyzer checks exactly this shape).
type Scrubber struct {
	mon      *Monitor
	interval time.Duration
	// onScrub, when non-nil, receives every scrub performed and the number
	// of positions it repaired (a repaired>0 scrub is a caught corruption).
	onScrub func(name string, repaired int64)

	mu      sync.Mutex
	targets map[string]ScrubTarget

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewScrubber builds a scrubber over the monitor's state view. interval
// <= 0 selects 1s. onScrub may be nil.
func NewScrubber(mon *Monitor, interval time.Duration, onScrub func(name string, repaired int64)) *Scrubber {
	if interval <= 0 {
		interval = time.Second
	}
	return &Scrubber{
		mon:      mon,
		interval: interval,
		onScrub:  onScrub,
		targets:  map[string]ScrubTarget{},
	}
}

// Track registers the instance's repair seam under the same name the
// monitor knows it by. Tracking is independent of Monitor.Register so the
// scrubber can be wired before or after the watchdog.
func (s *Scrubber) Track(name string, t ScrubTarget) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.targets[name] = t
}

// RunOnce scrubs every tracked Degraded instance and returns the repaired
// count per scrubbed instance. It is the loop body, exported so tests and
// drills can drive the scrubber deterministically without the ticker.
func (s *Scrubber) RunOnce() map[string]int64 {
	s.mu.Lock()
	targets := make(map[string]ScrubTarget, len(s.targets))
	for name, t := range s.targets {
		targets[name] = t
	}
	s.mu.Unlock()

	out := map[string]int64{}
	for name, t := range targets {
		if s.mon.State(name) != Degraded {
			continue
		}
		// Scrub outside the scrubber's lock: it takes the instance lock and
		// can contend with the serving path.
		repaired := t.Scrub()
		out[name] = repaired
		if s.onScrub != nil {
			s.onScrub(name, repaired)
		}
	}
	return out
}

// Start launches the periodic loop. The loop stops when ctx is canceled or
// Stop is called, whichever comes first. Start is not reentrant: call it
// once per Scrubber.
func (s *Scrubber) Start(ctx context.Context) {
	ctx, s.cancel = context.WithCancel(ctx)
	s.wg.Add(1)
	go s.loop(ctx)
}

// loop ticks until canceled.
func (s *Scrubber) loop(ctx context.Context) {
	defer s.wg.Done()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.RunOnce()
		}
	}
}

// Stop cancels the loop and waits for it to exit. Safe to call without a
// prior Start, and idempotent.
func (s *Scrubber) Stop() {
	if s.cancel != nil {
		s.cancel()
	}
	s.wg.Wait()
}
