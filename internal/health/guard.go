package health

import (
	"errors"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/perception"
	"repro/internal/safety"
	"repro/internal/tensor"
)

// FailSafe is the detection the Guard serves in place of a faulted or
// quarantined frame: obstacle declared with full confidence and full
// uncertainty, so the vehicle brakes and the safety assessor sees maximum
// criticality on the next tick. Failing toward caution is the paper's
// degradation contract — a fenced instance must never silently report
// "clear".
var FailSafe = perception.Detection{Obstacle: true, Confidence: 1, Uncertainty: 1}

// Guard wraps a perception.Stack with the watchdog: every Detect is gated
// on admission, timed against the monitor's deadline, checked for NaN, and
// absorbed into FailSafe when it faults; every Tick is suppressed while the
// instance is fenced and deadline-watched while it is not (a stuck
// transition wedges inside Tick on the sequential loop path, so Detect
// timing alone would never see it). Guard itself satisfies
// perception.Stack, so perception.RunStack drives the watchdog unchanged.
type Guard struct {
	name    string
	stack   perception.Stack
	monitor *Monitor
}

// NewGuard wraps the stack under the monitor's watch. The name must be
// registered with the monitor (Register) before frames flow.
func NewGuard(name string, st perception.Stack, m *Monitor) *Guard {
	return &Guard{name: name, stack: st, monitor: m}
}

// Detect gates, times, and observes one frame. A quarantined instance's
// frame never reaches the stack; a faulted frame (error, NaN, deadline
// breach) is absorbed into FailSafe after the monitor has run its safety
// response. The closed loop therefore keeps running — degradation, not
// crash.
func (g *Guard) Detect(frame *tensor.Tensor) (perception.Detection, error) {
	if !g.monitor.Gate(g.name) {
		return FailSafe, nil
	}
	start := now()
	det, err := g.stack.Detect(frame)
	state, reason := g.monitor.Observe(g.name, det.Confidence, det.Uncertainty, now().Sub(start), err)
	if reason != "" || state == Quarantined {
		return FailSafe, nil
	}
	return det, nil
}

// Tick runs the stack's governor iteration when the watchdog allows it.
// While fenced (Probation, Quarantined) the instance holds its
// emergency-restored level — no adaptation until it has proven itself. A
// tick that errors or breaches the deadline is itself a fault: the stuck-
// transition failure mode lives here, because on a sequential loop the
// wedged transition completes before the next Detect ever starts.
func (g *Guard) Tick(tick int, a safety.Assessment) (governor.Decision, error) {
	if !g.monitor.TickAllowed(g.name) {
		return governor.Decision{}, nil
	}
	start := now()
	dec, err := g.stack.Tick(tick, a)
	elapsed := now().Sub(start)
	if err != nil {
		// A tick refused by the store's integrity checksum is not an
		// ordinary error: the recovery data this instance would restore
		// from is corrupt, and that never heals.
		if errors.Is(err, core.ErrStoreCorrupt) {
			g.monitor.ObserveFault(g.name, ReasonStoreCorrupt)
		} else {
			g.monitor.ObserveFault(g.name, ReasonError)
		}
		return governor.Decision{}, nil
	}
	if d := g.monitor.Config().Deadline; d > 0 && elapsed > d {
		g.monitor.ObserveFault(g.name, ReasonDeadline)
	}
	return dec, nil
}

// Current delegates to the wrapped stack.
func (g *Guard) Current() int { return g.stack.Current() }

// Levels delegates to the wrapped stack.
func (g *Guard) Levels() []*core.Level { return g.stack.Levels() }

// Switches delegates to the wrapped stack.
func (g *Guard) Switches() int { return g.stack.Switches() }

// State returns the guarded instance's current health state.
func (g *Guard) State() State { return g.monitor.State(g.name) }

var _ perception.Stack = (*Guard)(nil)
