package health

import "time"

// now is the package clock seam; tests swap it for a fake to script
// deadline breaches deterministically.
var now = time.Now
