package health

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeTarget counts scrubs and reports a fixed repaired count.
type fakeTarget struct {
	mu       sync.Mutex
	calls    int
	repaired int64
	scrubbed chan struct{}
}

func (f *fakeTarget) Scrub() int64 {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	if f.scrubbed != nil {
		select {
		case f.scrubbed <- struct{}{}:
		default:
		}
	}
	return f.repaired
}

func (f *fakeTarget) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func TestScrubberRunOnceScrubsOnlyDegraded(t *testing.T) {
	mon := NewMonitor(Config{})
	for _, name := range []string{"healthy", "degraded", "quarantined"} {
		if err := mon.Register(name, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	mon.ObserveFault("degraded", ReasonError)
	if got := mon.State("degraded"); got != Degraded {
		t.Fatalf("setup: state = %v, want Degraded", got)
	}
	mon.ObserveFault("quarantined", ReasonError)
	mon.ObserveFault("quarantined", ReasonError)
	mon.ObserveFault("quarantined", ReasonError)
	if got := mon.State("quarantined"); got != Quarantined {
		t.Fatalf("setup: state = %v, want Quarantined", got)
	}

	var gotName string
	var gotRepaired int64
	s := NewScrubber(mon, time.Hour, func(name string, repaired int64) {
		gotName, gotRepaired = name, repaired
	})
	targets := map[string]*fakeTarget{
		"healthy":              {repaired: 1},
		"degraded":             {repaired: 7},
		"quarantined":          {repaired: 2},
		"untracked-in-monitor": {repaired: 3},
	}
	for name, tgt := range targets {
		s.Track(name, tgt)
	}

	out := s.RunOnce()
	if len(out) != 1 || out["degraded"] != 7 {
		t.Fatalf("RunOnce = %v, want map[degraded:7]", out)
	}
	if targets["healthy"].callCount() != 0 || targets["quarantined"].callCount() != 0 {
		t.Error("RunOnce scrubbed a non-Degraded instance")
	}
	if targets["untracked-in-monitor"].callCount() != 0 {
		t.Error("RunOnce scrubbed an instance the monitor reports Healthy by default")
	}
	if targets["degraded"].callCount() != 1 {
		t.Errorf("degraded scrubbed %d times, want 1", targets["degraded"].callCount())
	}
	if gotName != "degraded" || gotRepaired != 7 {
		t.Errorf("onScrub got (%q, %d), want (degraded, 7)", gotName, gotRepaired)
	}
}

func TestScrubberPeriodicLoopAndStop(t *testing.T) {
	mon := NewMonitor(Config{})
	if err := mon.Register("inst", nil, nil); err != nil {
		t.Fatal(err)
	}
	mon.ObserveFault("inst", ReasonError)

	tgt := &fakeTarget{scrubbed: make(chan struct{}, 1)}
	s := NewScrubber(mon, time.Millisecond, nil)
	s.Track("inst", tgt)
	s.Start(context.Background())
	select {
	case <-tgt.scrubbed:
	case <-time.After(5 * time.Second):
		t.Fatal("periodic loop never scrubbed the degraded instance")
	}
	s.Stop()
	// After Stop joins the loop, no further scrubs happen.
	calls := tgt.callCount()
	time.Sleep(10 * time.Millisecond)
	if tgt.callCount() != calls {
		t.Error("scrub loop kept running after Stop")
	}
	s.Stop() // idempotent
}

func TestScrubberContextCancelStopsLoop(t *testing.T) {
	mon := NewMonitor(Config{})
	if err := mon.Register("inst", nil, nil); err != nil {
		t.Fatal(err)
	}
	mon.ObserveFault("inst", ReasonError)

	tgt := &fakeTarget{scrubbed: make(chan struct{}, 1)}
	s := NewScrubber(mon, time.Millisecond, nil)
	s.Track("inst", tgt)
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	select {
	case <-tgt.scrubbed:
	case <-time.After(5 * time.Second):
		t.Fatal("periodic loop never scrubbed the degraded instance")
	}
	cancel()
	s.Stop() // joins even though the context, not Stop, ended the loop
}

func TestScrubberStopWithoutStart(t *testing.T) {
	s := NewScrubber(NewMonitor(Config{}), 0, nil)
	s.Stop() // must not panic or hang
}
