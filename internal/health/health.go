// Package health is the per-instance watchdog of a fleet deployment: a
// state machine Healthy→Degraded→Quarantined with probation-based
// re-admission, fed by per-frame observations (NaN outputs, deadline
// breaches, Detect errors, recovered panics) and armed with an automatic
// safety response — on a NaN output or a deadline breach the monitor
// forces an emergency restore to the dense level L0 through the
// governor.Target seam before degrading the instance, because the paper's
// reversible store makes dense the one state guaranteed to heal
// pruned-position corruption.
//
// The Monitor is the bookkeeping core; Guard wraps a perception.Stack so a
// closed loop (perception.RunStack) drives the watchdog without the loop
// knowing it is there. fleet.Dispatcher wires the same Monitor for
// frame-fanout deployments, and fleet.BudgetGovernor consults
// Monitor.Admissible to skip quarantined instances when rebalancing.
package health

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// State is one instance's position in the health machine. The integer
// values are the telemetry.MetricHealthState gauge codes.
type State int

const (
	// Healthy instances serve frames normally.
	Healthy State = telemetry.HealthHealthy
	// Degraded instances faulted recently; they keep serving (the
	// emergency restore already forced them dense) but are one fault
	// streak from quarantine.
	Degraded State = telemetry.HealthDegraded
	// Probation instances were re-admitted after quarantine and must stay
	// clean to return to Healthy; any fault sends them straight back.
	Probation State = telemetry.HealthProbation
	// Quarantined instances are fenced off: the dispatcher rejects their
	// frames, the Guard serves the fail-safe detection, the budget
	// governor skips them, and governor ticks are suppressed.
	Quarantined State = telemetry.HealthQuarantined
)

// String renders the state's operator-facing name.
func (s State) String() string { return telemetry.HealthStateName(int(s)) }

// Watchdog reasons attached to fault observations (the reason label of
// rpn_health_faults_total).
const (
	// ReasonNaN: the detection carried a non-finite confidence or
	// uncertainty — the signature of poisoned weights or a garbled frame.
	ReasonNaN = "nan"
	// ReasonDeadline: Detect (or a governor tick) exceeded the configured
	// deadline — a stuck transition or contended accelerator.
	ReasonDeadline = "deadline"
	// ReasonError: Detect returned an error (dropped frame, shape
	// mismatch).
	ReasonError = "error"
	// ReasonPanic: a dispatcher worker recovered a panic from the
	// instance's detection path.
	ReasonPanic = "panic"
	// ReasonStoreCorrupt: an integrity checksum refused a restore — the
	// recovery store holds displaced values that exist nowhere else, so
	// this corruption is unrecoverable by design and the instance is
	// quarantined permanently (no probation re-admission).
	ReasonStoreCorrupt = "store-corrupt"
)

// Restorer executes the emergency response: force the dense level. Both
// *fleet.Instance and *core.ReversibleModel satisfy it (it is the
// ApplyLevel half of the governor.Target seam).
type Restorer interface {
	ApplyLevel(target int) error
}

// Observer receives the monitor's telemetry: every attributed fault (with
// whether an emergency restore ran) and every state-machine step.
// telemetry.Hooks satisfies it structurally.
type Observer interface {
	ObserveHealthFault(reason string, restored bool)
	ObserveHealthState(from, to int)
}

// Config tunes the watchdog. The zero value of any field selects its
// default; thresholds count consecutive-state observations, and the
// quarantine dwell counts gated admission attempts rather than wall time,
// so drills replay deterministically.
type Config struct {
	// Deadline is the per-observation latency budget; an observation
	// slower than this is a ReasonDeadline fault (default 150ms, the
	// safety contract's order of magnitude for a restore-plus-frame; <0
	// disables the deadline watchdog).
	Deadline time.Duration
	// DegradeAfter is how many faults a Healthy instance absorbs before
	// degrading (default 1: the first fault degrades).
	DegradeAfter int
	// QuarantineAfter is how many further faults a Degraded instance
	// absorbs before quarantine (default 2).
	QuarantineAfter int
	// RecoverAfter is how many consecutive clean observations return a
	// Degraded instance to Healthy (default 25).
	RecoverAfter int
	// QuarantineDwell is how many gated admission attempts an instance
	// sits in quarantine before probation re-admits it (default 50).
	QuarantineDwell int
	// ProbationAfter is how many consecutive clean observations promote a
	// Probation instance back to Healthy (default 25).
	ProbationAfter int
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Deadline == 0 {
		c.Deadline = 150 * time.Millisecond
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 1
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 2
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 25
	}
	if c.QuarantineDwell <= 0 {
		c.QuarantineDwell = 50
	}
	if c.ProbationAfter <= 0 {
		c.ProbationAfter = 25
	}
	return c
}

// tracked is one registered instance's watchdog state.
type tracked struct {
	state    State
	restorer Restorer
	obs      Observer
	// faults counts faults observed in the current state; clean counts
	// consecutive clean observations; dwell counts gated admission
	// attempts while quarantined. Each transition resets all three.
	faults, clean, dwell int
	// permanent marks a quarantine with no probation path: the instance's
	// recovery store is corrupt, so no amount of dwell makes it safe.
	permanent bool
}

// Monitor tracks the health of registered instances. All methods are safe
// for concurrent use; the emergency restore runs under the monitor lock,
// so a quarantine decision and its safety response are atomic with respect
// to other observers.
type Monitor struct {
	cfg Config

	mu    sync.Mutex
	insts map[string]*tracked
}

// NewMonitor builds a monitor with the config (zero fields defaulted).
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), insts: map[string]*tracked{}}
}

// Config returns the resolved configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Register adds an instance at Healthy. restorer, when non-nil, receives
// the emergency ApplyLevel(0) on NaN and deadline faults; obs, when
// non-nil, receives the instance's health telemetry (registration reports
// the initial Healthy state as a from==to no-op).
func (m *Monitor) Register(name string, restorer Restorer, obs Observer) error {
	if name == "" {
		return fmt.Errorf("health: empty instance name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.insts[name]; dup {
		return fmt.Errorf("health: instance %q already registered", name)
	}
	m.insts[name] = &tracked{state: Healthy, restorer: restorer, obs: obs}
	if obs != nil {
		obs.ObserveHealthState(int(Healthy), int(Healthy))
	}
	return nil
}

// State returns the instance's current state (Healthy for unregistered
// names — an unmonitored instance is not fenced).
func (m *Monitor) State(name string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tr, ok := m.insts[name]; ok {
		return tr.state
	}
	return Healthy
}

// States snapshots every registered instance's state.
func (m *Monitor) States() map[string]State {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]State, len(m.insts))
	for name, tr := range m.insts {
		out[name] = tr.state
	}
	return out
}

// Admissible reports whether the instance may receive work — everything
// but Quarantined. The fleet BudgetGovernor's health gate calls this.
func (m *Monitor) Admissible(name string) bool {
	return m.State(name) != Quarantined
}

// Gate is the admission check callers make before handing the instance a
// frame. A quarantined instance's Gate calls count toward its dwell;
// once QuarantineDwell attempts have passed, the instance moves to
// Probation (re-admitted from the next call on). Gate returns whether
// this frame may proceed.
func (m *Monitor) Gate(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	tr, ok := m.insts[name]
	if !ok || tr.state != Quarantined {
		return true
	}
	if tr.permanent {
		// Unrecoverable by design: a corrupt store never earns probation.
		return false
	}
	tr.dwell++
	if tr.dwell >= m.cfg.QuarantineDwell {
		m.transition(tr, Probation)
	}
	return false
}

// TickAllowed reports whether the instance's governor may tick: yes in
// Healthy and Degraded (the governor keeps adapting a degraded instance),
// no in Probation and Quarantined (the instance holds the emergency-
// restored dense level until it has proven itself).
func (m *Monitor) TickAllowed(name string) bool {
	switch m.State(name) {
	case Healthy, Degraded:
		return true
	}
	return false
}

// Observe feeds one served frame into the watchdog: the detection's
// confidence and uncertainty (NaN check), the observation latency
// (deadline check), and Detect's error. It returns the instance's state
// after the observation and the fault reason ("" on a clean frame).
func (m *Monitor) Observe(name string, confidence, uncertainty float64, elapsed time.Duration, err error) (State, string) {
	reason := ""
	switch {
	case err != nil:
		reason = ReasonError
	case math.IsNaN(confidence) || math.IsInf(confidence, 0) ||
		math.IsNaN(uncertainty) || math.IsInf(uncertainty, 0):
		reason = ReasonNaN
	case m.cfg.Deadline > 0 && elapsed > m.cfg.Deadline:
		reason = ReasonDeadline
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	tr, ok := m.insts[name]
	if !ok {
		return Healthy, reason
	}
	if reason == "" {
		m.observeClean(tr)
	} else {
		m.observeFault(tr, reason)
	}
	return tr.state, reason
}

// ObserveFault feeds an out-of-band fault (a recovered panic, a failed
// governor tick, a deadline breach measured outside Detect) into the
// watchdog and returns the state after it.
func (m *Monitor) ObserveFault(name, reason string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	tr, ok := m.insts[name]
	if !ok {
		return Healthy
	}
	m.observeFault(tr, reason)
	return tr.state
}

// observeClean advances the recovery counters. Caller holds m.mu.
func (m *Monitor) observeClean(tr *tracked) {
	tr.clean++
	switch tr.state {
	case Degraded:
		if tr.clean >= m.cfg.RecoverAfter {
			m.transition(tr, Healthy)
		}
	case Probation:
		if tr.clean >= m.cfg.ProbationAfter {
			m.transition(tr, Healthy)
		}
	}
}

// observeFault runs the safety response and advances the state machine.
// Caller holds m.mu.
func (m *Monitor) observeFault(tr *tracked, reason string) {
	// The emergency response: a NaN output means the weights (or the
	// frame) are corrupt, a deadline breach means a transition wedged —
	// both answers are "get back to dense NOW", because L0 is the one
	// level the reversible store can always reconstruct exactly.
	restored := false
	if (reason == ReasonNaN || reason == ReasonDeadline) && tr.restorer != nil {
		err := tr.restorer.ApplyLevel(0)
		restored = err == nil
		if errors.Is(err, core.ErrStoreCorrupt) {
			// The one restore guaranteed to heal was refused by the
			// integrity checksum: the store itself is corrupt. Report the
			// triggering fault, then escalate as store corruption.
			if tr.obs != nil {
				tr.obs.ObserveHealthFault(reason, false)
			}
			reason = ReasonStoreCorrupt
		}
	}
	if tr.obs != nil {
		tr.obs.ObserveHealthFault(reason, restored)
	}
	tr.clean = 0
	tr.faults++
	if reason == ReasonStoreCorrupt {
		// Unrecoverable by design: no state absorbs a corrupt store, and
		// no dwell earns it probation.
		if tr.state != Quarantined {
			m.transition(tr, Quarantined)
		}
		tr.permanent = true
		return
	}
	switch tr.state {
	case Healthy:
		if tr.faults >= m.cfg.DegradeAfter {
			m.transition(tr, Degraded)
		}
	case Degraded:
		if tr.faults >= m.cfg.QuarantineAfter {
			m.transition(tr, Quarantined)
		}
	case Probation:
		// Probation has no second chances.
		m.transition(tr, Quarantined)
	}
}

// transition moves the instance to a new state, resetting the counters.
// Caller holds m.mu.
func (m *Monitor) transition(tr *tracked, to State) {
	from := tr.state
	tr.state = to
	tr.faults, tr.clean, tr.dwell = 0, 0, 0
	if tr.obs != nil {
		tr.obs.ObserveHealthState(int(from), int(to))
	}
}
