// Package safety implements the safety-monitoring substrate: criticality
// assessment fusing time-to-collision, scene complexity, and perception
// uncertainty; per-class accuracy contracts; and a violation log. The
// runtime governor consumes assessments and enforces contracts when picking
// pruning levels.
package safety

import (
	"fmt"
	"math"
)

// Criticality is the discrete danger class of the current driving context.
type Criticality int

// Criticality classes, in increasing order of danger.
const (
	Nominal   Criticality = iota // open road, nothing of interest
	Elevated                     // traffic present, no imminent threat
	Critical                     // threat requires full perception quality
	Emergency                    // collision imminent; maximum capability
)

// String returns the class name.
func (c Criticality) String() string {
	switch c {
	case Nominal:
		return "nominal"
	case Elevated:
		return "elevated"
	case Critical:
		return "critical"
	case Emergency:
		return "emergency"
	default:
		return fmt.Sprintf("criticality(%d)", int(c))
	}
}

// NumClasses is the number of criticality classes.
const NumClasses = 4

// Assessment is the fused criticality estimate for one control tick.
type Assessment struct {
	// Score is the fused danger score in [0,1].
	Score float64
	// Class is Score discretized by the assessor thresholds.
	Class Criticality
	// TTC is the time-to-collision input, in seconds (+Inf when no
	// collision course exists).
	TTC float64
	// Complexity is the scene-complexity input in [0,1].
	Complexity float64
	// Uncertainty is the perception-uncertainty input in [0,1].
	Uncertainty float64
}

// Assessor fuses raw signals into an Assessment. The zero value is not
// valid; use DefaultAssessor or fill every field.
type Assessor struct {
	// TTCHorizonS is the horizon below which time-to-collision starts to
	// contribute danger; at TTC=0 the TTC term saturates at 1.
	TTCHorizonS float64
	// WTTC, WComplexity and WUncertainty weight the fused score; they
	// should sum to 1.
	WTTC, WComplexity, WUncertainty float64
	// Thresholds are the score boundaries to Elevated, Critical and
	// Emergency, in ascending order.
	Thresholds [3]float64
}

// DefaultAssessor returns the evaluation's standard fusion: TTC dominates,
// with complexity and uncertainty as context.
func DefaultAssessor() Assessor {
	return Assessor{
		TTCHorizonS:  5.0,
		WTTC:         0.65,
		WComplexity:  0.10,
		WUncertainty: 0.25,
		Thresholds:   [3]float64{0.2, 0.4, 0.6},
	}
}

// Validate checks internal consistency.
func (a Assessor) Validate() error {
	if a.TTCHorizonS <= 0 {
		return fmt.Errorf("safety: TTC horizon %v must be positive", a.TTCHorizonS)
	}
	if a.WTTC < 0 || a.WComplexity < 0 || a.WUncertainty < 0 {
		return fmt.Errorf("safety: negative fusion weight")
	}
	if s := a.WTTC + a.WComplexity + a.WUncertainty; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("safety: fusion weights sum to %v, want 1", s)
	}
	if !(a.Thresholds[0] < a.Thresholds[1] && a.Thresholds[1] < a.Thresholds[2]) {
		return fmt.Errorf("safety: thresholds %v not ascending", a.Thresholds)
	}
	return nil
}

// Assess fuses the three signals. ttc may be +Inf; complexity and
// uncertainty are clamped to [0,1].
func (a Assessor) Assess(ttc, complexity, uncertainty float64) Assessment {
	ttcTerm := 0.0
	if !math.IsInf(ttc, 1) {
		ttcTerm = 1 - ttc/a.TTCHorizonS
		if ttcTerm < 0 {
			ttcTerm = 0
		}
		if ttcTerm > 1 {
			ttcTerm = 1
		}
	}
	score := a.WTTC*ttcTerm + a.WComplexity*clamp01(complexity) + a.WUncertainty*clamp01(uncertainty)
	cls := Nominal
	switch {
	case score >= a.Thresholds[2]:
		cls = Emergency
	case score >= a.Thresholds[1]:
		cls = Critical
	case score >= a.Thresholds[0]:
		cls = Elevated
	}
	return Assessment{Score: score, Class: cls, TTC: ttc, Complexity: clamp01(complexity), Uncertainty: clamp01(uncertainty)}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Entropy returns the normalized Shannon entropy of a probability vector in
// [0,1]: 0 for a one-hot prediction, 1 for uniform. It is the standard
// cheap uncertainty proxy for softmax classifiers.
func Entropy(probs []float32) float64 {
	if len(probs) < 2 {
		return 0
	}
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= float64(p) * math.Log(float64(p))
		}
	}
	return h / math.Log(float64(len(probs)))
}

// Margin returns 1 − (p₁ − p₂), the complement of the top-two probability
// margin: 0 when the classifier is certain, approaching 1 when the top two
// classes tie.
func Margin(probs []float32) float64 {
	if len(probs) < 2 {
		return 0
	}
	top, second := float32(-1), float32(-1)
	for _, p := range probs {
		if p > top {
			second = top
			top = p
		} else if p > second {
			second = p
		}
	}
	return float64(1 - (top - second))
}

// Contract is the quality contract the governor enforces: the minimum
// calibrated accuracy the active pruning level must provide in each
// criticality class.
type Contract struct {
	// MinAccuracy is indexed by Criticality.
	MinAccuracy [NumClasses]float64
}

// DefaultContract relaxes quality in nominal conditions and demands
// (near-)full quality under threat.
func DefaultContract() Contract {
	return Contract{MinAccuracy: [NumClasses]float64{0.75, 0.85, 0.93, 0.97}}
}

// Floor returns the accuracy floor for the given class.
func (c Contract) Floor(cl Criticality) float64 {
	if cl < 0 {
		cl = 0
	}
	if int(cl) >= NumClasses {
		cl = NumClasses - 1
	}
	return c.MinAccuracy[cl]
}

// Validate checks the floors are monotone non-decreasing in criticality and
// within [0,1].
func (c Contract) Validate() error {
	prev := -1.0
	for i, v := range c.MinAccuracy {
		if v < 0 || v > 1 {
			return fmt.Errorf("safety: contract floor %v out of [0,1]", v)
		}
		if v < prev {
			return fmt.Errorf("safety: contract floor for class %d (%v) below class %d (%v)", i, v, i-1, prev)
		}
		prev = v
	}
	return nil
}

// Violation records one tick where the active configuration failed the
// contract.
type Violation struct {
	Tick  int
	Class Criticality
	Floor float64
	Got   float64
}

// ViolationLog accumulates contract violations during a run.
type ViolationLog struct {
	violations []Violation
}

// Add records a violation.
func (l *ViolationLog) Add(tick int, class Criticality, floor, got float64) {
	l.violations = append(l.violations, Violation{Tick: tick, Class: class, Floor: floor, Got: got})
}

// Count returns the number of recorded violations.
func (l *ViolationLog) Count() int { return len(l.violations) }

// All returns the recorded violations (shared slice).
func (l *ViolationLog) All() []Violation { return l.violations }
