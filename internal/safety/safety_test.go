package safety

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCriticalityString(t *testing.T) {
	want := map[Criticality]string{
		Nominal: "nominal", Elevated: "elevated", Critical: "critical", Emergency: "emergency",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if Criticality(9).String() != "criticality(9)" {
		t.Error("unknown class string wrong")
	}
}

func TestDefaultAssessorValidates(t *testing.T) {
	if err := DefaultAssessor().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultAssessor()
	bad.WTTC = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("weights not summing to 1 accepted")
	}
	bad = DefaultAssessor()
	bad.Thresholds = [3]float64{0.5, 0.5, 0.7}
	if err := bad.Validate(); err == nil {
		t.Error("non-ascending thresholds accepted")
	}
	bad = DefaultAssessor()
	bad.TTCHorizonS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestAssessClasses(t *testing.T) {
	a := DefaultAssessor()
	// Open road: infinite TTC, empty, certain.
	open := a.Assess(math.Inf(1), 0, 0)
	if open.Class != Nominal || open.Score != 0 {
		t.Errorf("open road = %+v", open)
	}
	// Imminent collision saturates TTC term: 0.6 ≥ threshold 0.5 → Critical.
	imminent := a.Assess(0.1, 0, 0)
	if imminent.Class < Critical {
		t.Errorf("imminent TTC class = %v", imminent.Class)
	}
	// Everything maxed → Emergency.
	worst := a.Assess(0, 1, 1)
	if worst.Class != Emergency || math.Abs(worst.Score-1) > 1e-9 {
		t.Errorf("worst case = %+v", worst)
	}
	// Moderate TTC only → Elevated.
	moderate := a.Assess(2.5, 0, 0)
	if moderate.Class != Elevated {
		t.Errorf("moderate = %+v", moderate)
	}
}

func TestAssessClampsInputs(t *testing.T) {
	a := DefaultAssessor()
	got := a.Assess(math.Inf(1), 5, -3)
	if got.Complexity != 1 || got.Uncertainty != 0 {
		t.Errorf("clamping wrong: %+v", got)
	}
}

// Property: score is monotone — decreasing TTC or increasing complexity/
// uncertainty never decreases the score.
func TestAssessMonotoneProperty(t *testing.T) {
	a := DefaultAssessor()
	f := func(ttcRaw, c, u, dt float64) bool {
		ttc := math.Abs(ttcRaw)
		c = math.Mod(math.Abs(c), 1)
		u = math.Mod(math.Abs(u), 1)
		d := math.Mod(math.Abs(dt), 1)
		base := a.Assess(ttc, c, u).Score
		if a.Assess(ttc+d, c, u).Score > base+1e-12 {
			return false
		}
		if a.Assess(ttc, math.Min(1, c+d), u).Score < base-1e-12 {
			return false
		}
		if a.Assess(ttc, c, math.Min(1, u+d)).Score < base-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEntropy(t *testing.T) {
	if Entropy([]float32{1, 0, 0, 0}) != 0 {
		t.Error("one-hot entropy should be 0")
	}
	if got := Entropy([]float32{0.25, 0.25, 0.25, 0.25}); math.Abs(got-1) > 1e-9 {
		t.Errorf("uniform entropy = %v, want 1", got)
	}
	if Entropy([]float32{1}) != 0 {
		t.Error("degenerate vector should be 0")
	}
	mid := Entropy([]float32{0.7, 0.3})
	if mid <= 0 || mid >= 1 {
		t.Errorf("mid entropy = %v", mid)
	}
}

func TestMargin(t *testing.T) {
	if Margin([]float32{1, 0}) != 0 {
		t.Error("certain margin should be 0")
	}
	if got := Margin([]float32{0.5, 0.5}); math.Abs(got-1) > 1e-6 {
		t.Errorf("tied margin = %v", got)
	}
	if got := Margin([]float32{0.1, 0.6, 0.3}); math.Abs(got-0.7) > 1e-6 {
		t.Errorf("margin = %v, want 0.7", got)
	}
}

func TestContract(t *testing.T) {
	c := DefaultContract()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Floor(Nominal) >= c.Floor(Emergency) {
		t.Error("floors should increase with criticality")
	}
	// Out-of-range classes clamp.
	if c.Floor(Criticality(-1)) != c.Floor(Nominal) {
		t.Error("negative class not clamped")
	}
	if c.Floor(Criticality(99)) != c.Floor(Emergency) {
		t.Error("overflow class not clamped")
	}
	bad := Contract{MinAccuracy: [NumClasses]float64{0.9, 0.8, 0.95, 0.99}}
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone contract accepted")
	}
	bad = Contract{MinAccuracy: [NumClasses]float64{0.5, 0.6, 0.7, 1.2}}
	if err := bad.Validate(); err == nil {
		t.Error("floor >1 accepted")
	}
}

func TestViolationLog(t *testing.T) {
	var l ViolationLog
	if l.Count() != 0 {
		t.Error("fresh log not empty")
	}
	l.Add(5, Critical, 0.95, 0.9)
	l.Add(6, Emergency, 0.99, 0.9)
	if l.Count() != 2 {
		t.Error("count wrong")
	}
	v := l.All()[0]
	if v.Tick != 5 || v.Class != Critical || v.Floor != 0.95 || v.Got != 0.9 {
		t.Errorf("violation = %+v", v)
	}
}
