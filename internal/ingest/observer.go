package ingest

import "time"

// Observer is the ingest front end's telemetry seam; telemetry.Hooks
// satisfies it structurally (the rpn_ingest_* families). Class strings
// are safety.Criticality names; reason strings are Reason.String() values.
type Observer interface {
	// ObserveIngestAccepted reports one frame accepted into its
	// criticality queue. Every accepted frame is owed exactly one result
	// (served, shed, or error), so accepted = results always balances.
	ObserveIngestAccepted(class string)
	// ObserveIngestRejected reports one admission refusal (connection- or
	// frame-level) with its typed reason. Rejected work never queued.
	ObserveIngestRejected(reason string)
	// ObserveIngestShed reports one accepted frame the load-shedder
	// dropped, with the victim's class.
	ObserveIngestShed(class string)
	// ObserveIngestBackpressure reports one advisory RETRY-AFTER pushed
	// because queue depth crossed the high watermark.
	ObserveIngestBackpressure()
	// SetIngestConnections reports the admitted connection count.
	SetIngestConnections(n int)
	// SetIngestQueueDepth reports one class's current queue depth.
	SetIngestQueueDepth(class string, depth int)
	// ObserveIngestEnqueue reports one accepted frame's arrival-to-queued
	// latency (the sheds-before-blocking quantity the bench gate bounds).
	ObserveIngestEnqueue(elapsed time.Duration)
	// ObserveIngestFrameLatency reports one served frame's full ingest
	// round-trip, arrival to result written back.
	ObserveIngestFrameLatency(elapsed time.Duration)
}

// nopObserver is the default Observer when none is configured.
type nopObserver struct{}

func (nopObserver) ObserveIngestAccepted(string)            {}
func (nopObserver) ObserveIngestRejected(string)            {}
func (nopObserver) ObserveIngestShed(string)                {}
func (nopObserver) ObserveIngestBackpressure()              {}
func (nopObserver) SetIngestConnections(int)                {}
func (nopObserver) SetIngestQueueDepth(string, int)         {}
func (nopObserver) ObserveIngestEnqueue(time.Duration)      {}
func (nopObserver) ObserveIngestFrameLatency(time.Duration) {}
