package ingest

// client.go is the RFR1 client used by the simdrive load generator, the
// rpnctl probes, and the e2e tests. It is deliberately thin: a dialed
// connection, a HELLO/WELCOME handshake with typed rejection, a locked
// writer (frames and reads may run from different goroutines), and a
// deadline-bounded reader.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/safety"
	"repro/internal/tensor"
)

// RejectError is the typed admission refusal a client receives.
type RejectError struct {
	Reason Reason
	Text   string
}

func (e *RejectError) Error() string {
	if e.Text == "" {
		return fmt.Sprintf("ingest: rejected: %s", e.Reason)
	}
	return fmt.Sprintf("ingest: rejected: %s (%s)", e.Reason, e.Text)
}

// Client is one vehicle's connection to the front end.
type Client struct {
	c          net.Conn
	maxPayload int

	// wmu serializes writers; the read side is single-consumer by
	// convention (one goroutine calls Read*).
	wmu sync.Mutex
}

// Dial connects, performs the HELLO handshake, and waits for the
// admission verdict. A REJECT surfaces as *RejectError.
func Dial(addr, tenant, vehicle string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ingest: dial %s: %w", addr, err)
	}
	cl := &Client{c: c, maxPayload: DefaultMaxPayload}
	deadline := now().Add(timeout)
	if err := c.SetDeadline(deadline); err != nil {
		_ = c.Close() //lint:allow(errdrop) handshake never started
		return nil, err
	}
	if err := WriteMessage(c, &Message{Type: TypeHello, Tenant: tenant, Vehicle: vehicle}, cl.maxPayload); err != nil {
		_ = c.Close() //lint:allow(errdrop) handshake failed; nothing buffered
		return nil, err
	}
	m, err := ReadMessage(c, cl.maxPayload)
	if err != nil {
		_ = c.Close() //lint:allow(errdrop) handshake failed; nothing buffered
		return nil, fmt.Errorf("ingest: handshake: %w", err)
	}
	switch m.Type {
	case TypeWelcome:
		// Clear the handshake deadline; per-call deadlines take over.
		if err := c.SetDeadline(time.Time{}); err != nil {
			_ = c.Close() //lint:allow(errdrop) socket already unusable
			return nil, err
		}
		return cl, nil
	case TypeReject:
		_ = c.Close() //lint:allow(errdrop) server already rejected; nothing buffered
		return nil, &RejectError{Reason: m.Reason, Text: m.Text}
	default:
		_ = c.Close() //lint:allow(errdrop) protocol error; nothing buffered
		return nil, fmt.Errorf("ingest: handshake: unexpected message type %d", m.Type)
	}
}

// SendFrame submits one frame. Safe for concurrent use with other
// senders; results arrive via Read on the reader goroutine.
func (cl *Client) SendFrame(seq uint64, class safety.Criticality, frame *tensor.Tensor) error {
	cl.wmu.Lock()
	defer cl.wmu.Unlock()
	return WriteMessage(cl.c, &Message{Type: TypeFrame, Seq: seq, Class: class, Frame: frame}, cl.maxPayload)
}

// Read returns the next server message, waiting at most timeout
// (0: block indefinitely).
func (cl *Client) Read(timeout time.Duration) (*Message, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = now().Add(timeout)
	}
	if err := cl.c.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	return ReadMessage(cl.c, cl.maxPayload)
}

// IsTimeout reports whether a Read error was the deadline (no message
// arrived), as opposed to a closed or broken connection.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Close hangs up.
func (cl *Client) Close() error { return cl.c.Close() }
