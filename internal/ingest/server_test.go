package ingest

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/perception"
	"repro/internal/safety"
	"repro/internal/tensor"
)

// stubBackend mimics the dispatcher's contract — bounded job queue,
// worker pool, tagged results — with a configurable per-frame service
// time, so overload tests control the service rate precisely instead of
// depending on model inference speed.
type stubBackend struct {
	jobs    chan stubJob
	results chan fleet.Result
	wg      sync.WaitGroup
	delay   time.Duration
	served  atomic.Int64
}

type stubJob struct {
	model string
	tag   any
}

func newStubBackend(workers, queueCap int, delay time.Duration) *stubBackend {
	b := &stubBackend{
		jobs:    make(chan stubJob, queueCap),
		results: make(chan fleet.Result, 4096),
		delay:   delay,
	}
	for i := 0; i < workers; i++ {
		b.wg.Add(1)
		go b.worker()
	}
	return b
}

func (b *stubBackend) worker() {
	defer b.wg.Done()
	for j := range b.jobs {
		if b.delay > 0 {
			time.Sleep(b.delay)
		}
		b.served.Add(1)
		b.results <- fleet.Result{
			Model:     j.model,
			Tag:       j.tag,
			Detection: perception.Detection{Obstacle: true, Confidence: 0.9, Uncertainty: 0.1},
		}
	}
}

func (b *stubBackend) SubmitTagged(model string, frame *tensor.Tensor, tag any) (int64, error) {
	if model == "missing" {
		return 0, fmt.Errorf("fleet: unknown instance %q", model)
	}
	b.jobs <- stubJob{model: model, tag: tag}
	return 0, nil
}

func (b *stubBackend) Results() <-chan fleet.Result { return b.results }

func (b *stubBackend) Close() {
	close(b.jobs)
	b.wg.Wait()
	close(b.results)
}

// startServer spins up a server over a stub backend on an ephemeral
// port. The returned shutdown runs a bounded graceful drain and closes
// the backend; tests that shut down manually pass their own sequence.
func startServer(t *testing.T, cfg Config, b *stubBackend) (*Server, func()) {
	t.Helper()
	cfg.Backend = b
	s, err := Listen(cfg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		b.Close()
	}
}

// assertNoGoroutineLeak asserts the goroutine count settles back to the
// baseline (small slack for runtime helpers), the goroleak-style runtime
// check the shutdown paths are held to.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutine leak: %d alive, baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
}

func TestServerEcho(t *testing.T) {
	baseline := runtime.NumGoroutine()
	obs := newRecObs()
	b := newStubBackend(2, 8, 0)
	s, shutdown := startServer(t, Config{Observer: obs}, b)

	cl, err := Dial(s.Addr().String(), "acme", "car0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := cl.SendFrame(seq, safety.Critical, testFrame(16)); err != nil {
			t.Fatal(err)
		}
		m, err := cl.Read(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != TypeResult || m.Seq != seq || m.Status != StatusOK || !m.Obstacle {
			t.Fatalf("result %d: %+v", seq, m)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	shutdown()
	if got := obs.acceptedTotal(); got != 3 {
		t.Errorf("accepted = %d want 3", got)
	}
	if got := obs.shedTotal(); got != 0 {
		t.Errorf("shed = %d want 0", got)
	}
	assertNoGoroutineLeak(t, baseline)
}

func TestServerConnLimitAndRelease(t *testing.T) {
	obs := newRecObs()
	b := newStubBackend(1, 4, 0)
	s, shutdown := startServer(t, Config{
		Observer: obs,
		Tenants:  map[string]TenantLimits{"capped": {MaxConns: 1}},
	}, b)
	defer shutdown()

	first, err := Dial(s.Addr().String(), "capped", "car0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Dial(s.Addr().String(), "capped", "car1", time.Second)
	rej, ok := err.(*RejectError)
	if !ok || rej.Reason != ReasonConnLimit {
		t.Fatalf("second dial: err = %v, want conn-limit reject", err)
	}
	if obs.rejectedOf("conn-limit") != 1 {
		t.Errorf("rejected{conn-limit} = %d want 1", obs.rejectedOf("conn-limit"))
	}
	// Another tenant is unaffected.
	other, err := Dial(s.Addr().String(), "other", "car2", time.Second)
	if err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}
	if err := other.Close(); err != nil {
		t.Fatal(err)
	}
	// Releasing the capped tenant's conn frees the slot.
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		cl, err := Dial(s.Addr().String(), "capped", "car3", time.Second)
		if err == nil {
			if cerr := cl.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerRateLimitRetryAfter(t *testing.T) {
	obs := newRecObs()
	b := newStubBackend(1, 4, 0)
	s, shutdown := startServer(t, Config{
		Observer: obs,
		Tenants:  map[string]TenantLimits{"slow": {FramesPerSec: 5, Burst: 1}},
	}, b)
	defer shutdown()

	cl, err := Dial(s.Addr().String(), "slow", "car0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := cl.SendFrame(1, safety.Nominal, testFrame(4)); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Read(2 * time.Second)
	if err != nil || m.Type != TypeResult || m.Status != StatusOK {
		t.Fatalf("first frame: %+v, %v", m, err)
	}
	// Bucket empty: the second frame draws a typed RETRY-AFTER carrying
	// a wait that, once slept, admits the retry.
	if err := cl.SendFrame(2, safety.Nominal, testFrame(4)); err != nil {
		t.Fatal(err)
	}
	m, err = cl.Read(2 * time.Second)
	if err != nil || m.Type != TypeRetryAfter || m.Reason != ReasonRateLimited || m.Seq != 2 {
		t.Fatalf("over-rate frame: %+v, %v", m, err)
	}
	if m.Millis == 0 || m.Millis > 1000 {
		t.Fatalf("retry hint %dms, want (0, 1000] at 5 fps", m.Millis)
	}
	time.Sleep(time.Duration(m.Millis) * time.Millisecond)
	if err := cl.SendFrame(3, safety.Nominal, testFrame(4)); err != nil {
		t.Fatal(err)
	}
	m, err = cl.Read(2 * time.Second)
	if err != nil || m.Type != TypeResult || m.Status != StatusOK {
		t.Fatalf("post-wait frame: %+v, %v", m, err)
	}
	if obs.rejectedOf("rate-limited") != 1 {
		t.Errorf("rejected{rate-limited} = %d want 1", obs.rejectedOf("rate-limited"))
	}
}

// collectResults drains client messages, counting results by status and
// recording which seqs were shed/served, until the conn breaks or the
// wanted number of RESULTs arrived.
type clientTally struct {
	mu       sync.Mutex
	byStatus map[Status]int
	bySeq    map[uint64]Status
	retries  map[Reason]int
}

func tallyClient(cl *Client, want int, done chan<- *clientTally) {
	ta := &clientTally{byStatus: map[Status]int{}, bySeq: map[uint64]Status{}, retries: map[Reason]int{}}
	results := 0
	for results < want {
		m, err := cl.Read(10 * time.Second)
		if err != nil {
			break
		}
		switch m.Type {
		case TypeResult:
			ta.mu.Lock()
			ta.byStatus[m.Status]++
			ta.bySeq[m.Seq] = m.Status
			ta.mu.Unlock()
			results++
		case TypeRetryAfter:
			ta.mu.Lock()
			ta.retries[m.Reason]++
			ta.mu.Unlock()
			if m.Seq != 0 {
				// A refused frame is not owed a RESULT.
				results++
			}
		}
	}
	done <- ta
}

func TestServerOverloadShedsLowestClassFirst(t *testing.T) {
	baseline := runtime.NumGoroutine()
	obs := newRecObs()
	// Service rate: 1 worker × 1ms/frame = ~1000 fps. Arrival: 4
	// frames/ms = ~4000 fps — the 4x sustained overload of the
	// acceptance criteria. Queue of 16 saturates in the first few
	// milliseconds.
	b := newStubBackend(1, 1, time.Millisecond)
	s, shutdown := startServer(t, Config{Observer: obs, QueueCap: 16, Pumps: 2}, b)

	cl, err := Dial(s.Addr().String(), "fleet", "car0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const total = 400
	// Deterministic class schedule ~ 50/30/15/5: emergencies are rare,
	// the way real criticality is distributed.
	classOf := func(i int) safety.Criticality {
		switch {
		case i%20 == 19:
			return safety.Emergency
		case i%20 >= 16:
			return safety.Critical
		case i%20 >= 10:
			return safety.Elevated
		default:
			return safety.Nominal
		}
	}
	done := make(chan *clientTally, 1)
	go tallyClient(cl, total, done)

	frame := testFrame(16)
	emergencies := map[uint64]bool{}
	for i := 0; i < total; i++ {
		c := classOf(i)
		if c == safety.Emergency {
			emergencies[uint64(i+1)] = true
		}
		if err := cl.SendFrame(uint64(i+1), c, frame); err != nil {
			t.Fatal(err)
		}
		// Pace arrivals at ~4x the service rate.
		if i%4 == 3 {
			time.Sleep(time.Millisecond)
		}
	}
	ta := <-done
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	shutdown()

	ta.mu.Lock()
	defer ta.mu.Unlock()
	if ta.byStatus[StatusShed] == 0 {
		t.Fatal("4x overload shed nothing — the queue absorbed an unbounded backlog")
	}
	// The acceptance invariant: zero emergency-class sheds; every
	// emergency frame was served.
	if got := obs.shedOf(safety.Emergency.String()); got != 0 {
		t.Fatalf("shed{emergency} = %d, want 0", got)
	}
	for seq := range emergencies {
		if st, ok := ta.bySeq[seq]; !ok || st != StatusOK {
			t.Fatalf("emergency frame %d: status %v (present %v), want StatusOK", seq, st, ok)
		}
	}
	// Counter agreement: the server's shed count equals the client's
	// StatusShed tally, and accepted = delivered results.
	if obs.shedTotal() != ta.byStatus[StatusShed] {
		t.Fatalf("rpn_ingest_shed_total %d != client shed tally %d", obs.shedTotal(), ta.byStatus[StatusShed])
	}
	delivered := ta.byStatus[StatusOK] + ta.byStatus[StatusShed] + ta.byStatus[StatusError] + ta.byStatus[StatusQuarantined]
	if obs.acceptedTotal() != delivered {
		t.Fatalf("accepted %d != delivered results %d", obs.acceptedTotal(), delivered)
	}
	// Backpressure advisories flowed while the queue rode the watermark.
	obs.mu.Lock()
	bp := obs.backpressure
	obs.mu.Unlock()
	if bp == 0 {
		t.Error("no advisory backpressure at sustained 4x overload")
	}
	assertNoGoroutineLeak(t, baseline)
}

func TestServerGracefulDrainLosesNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()
	obs := newRecObs()
	b := newStubBackend(1, 4, 2*time.Millisecond)
	s, _ := startServer(t, Config{Observer: obs, QueueCap: 64}, b)

	cl, err := Dial(s.Addr().String(), "fleet", "car0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 32
	done := make(chan *clientTally, 1)
	go tallyClient(cl, burst, done)
	for i := 0; i < burst; i++ {
		if err := cl.SendFrame(uint64(i+1), safety.Criticality(i%4), testFrame(8)); err != nil {
			t.Fatal(err)
		}
	}
	// Let the reader accept the burst, then drain mid-flight.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain exceeded its deadline: %v", err)
	}
	ta := <-done
	b.Close()
	if err := cl.Close(); err == nil {
		// The server already closed the socket; a second close may or
		// may not error depending on timing — both are fine.
		_ = err
	}

	// Every accepted frame got a result: the client's tally covers all
	// accepted frames (frames that arrived after drain started got
	// RETRY-AFTER draining instead and are not owed results).
	ta.mu.Lock()
	delivered := ta.byStatus[StatusOK] + ta.byStatus[StatusShed] + ta.byStatus[StatusError]
	drainRefusals := ta.retries[ReasonDraining]
	ta.mu.Unlock()
	if delivered != obs.acceptedTotal() {
		t.Fatalf("drain lost frames: accepted %d, results delivered %d (drain refusals %d)",
			obs.acceptedTotal(), delivered, drainRefusals)
	}
	if delivered+drainRefusals != burst {
		t.Fatalf("results %d + refusals %d != sent %d", delivered, drainRefusals, burst)
	}
	// New connections are refused while/after draining.
	if _, err := Dial(s.Addr().String(), "fleet", "late", 500*time.Millisecond); err == nil {
		t.Fatal("post-drain dial accepted")
	}
	assertNoGoroutineLeak(t, baseline)
}

func TestServerIdleReap(t *testing.T) {
	b := newStubBackend(1, 4, 0)
	s, shutdown := startServer(t, Config{IdleTimeout: 100 * time.Millisecond}, b)
	defer shutdown()

	cl, err := Dial(s.Addr().String(), "fleet", "car0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Logf("close after reap: %v", err)
		}
	}()
	// Say nothing; the idle deadline must reap us.
	if _, err := cl.Read(3 * time.Second); err == nil {
		t.Fatal("idle connection not reaped")
	}
}

func TestServerSubmitErrorSurfaces(t *testing.T) {
	b := newStubBackend(1, 4, 0)
	s, shutdown := startServer(t, Config{}, b)
	defer shutdown()

	cl, err := Dial(s.Addr().String(), "fleet", "missing", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := cl.SendFrame(1, safety.Nominal, testFrame(4)); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Read(2 * time.Second)
	if err != nil || m.Type != TypeResult || m.Status != StatusError || m.Text == "" {
		t.Fatalf("unknown-model frame: %+v, %v", m, err)
	}
}

func TestRouteQuarantineMapping(t *testing.T) {
	obs := newRecObs()
	b := newStubBackend(1, 1, 0)
	s, shutdown := startServer(t, Config{Observer: obs}, b)
	defer shutdown()
	reply := &httpReply{ch: make(chan *Message, 1)}
	it := &item{sink: reply, seq: 77, class: safety.Critical, arrived: time.Now()}
	s.pendingWG.Add(1)
	s.route(fleet.Result{Err: fleet.ErrQuarantined, Tag: &pending{it: it}})
	m := <-reply.ch
	if m.Status != StatusQuarantined || m.Seq != 77 {
		t.Fatalf("quarantined result mapped to %+v", m)
	}
	// Untagged results (in-process submitters) pass the router by.
	s.route(fleet.Result{Model: "other"})
}

func TestServerChaosDrill(t *testing.T) {
	baseline := runtime.NumGoroutine()
	specs, err := fault.ParseSpecs("conn-drop:car0:after=3:for=1,slow-loris:car1:latency=30ms:for=2,garble-frames:car2:for=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(11, specs...)
	obs := newRecObs()
	b := newStubBackend(2, 8, 0)
	s, shutdown := startServer(t, Config{Observer: obs, Injector: inj}, b)

	// conn-drop: car0's 4th message (3 frames + the severed one) cuts
	// the stream; the client sees the close and reconnects cleanly.
	cl, err := Dial(s.Addr().String(), "fleet", "car0", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 2; seq++ {
		if err := cl.SendFrame(seq, safety.Nominal, testFrame(4)); err != nil {
			t.Fatal(err)
		}
		if m, err := cl.Read(2 * time.Second); err != nil || m.Status != StatusOK {
			t.Fatalf("pre-drop frame %d: %+v, %v", seq, m, err)
		}
	}
	// Events are 0-based: frames 1-3 pass the after=3 window, frame 4
	// fires it (the HELLO does not count — wire events are per-peer
	// frames) and the connection drops mid-read.
	if err := cl.SendFrame(3, safety.Nominal, testFrame(4)); err != nil {
		t.Fatal(err)
	}
	if err := cl.SendFrame(4, safety.Nominal, testFrame(4)); err != nil {
		t.Fatal(err)
	}
	sawDrop := false
	for i := 0; i < 2; i++ {
		if _, err := cl.Read(2 * time.Second); err != nil {
			sawDrop = true
			break
		}
	}
	if !sawDrop {
		t.Fatal("armed conn-drop window did not sever the stream")
	}
	if err := cl.Close(); err != nil {
		t.Logf("close severed conn: %v", err)
	}
	// Reconnect works: the slot was released, no state leaked.
	cl2, err := Dial(s.Addr().String(), "fleet", "car0", time.Second)
	if err != nil {
		t.Fatalf("reconnect after conn-drop: %v", err)
	}
	if err := cl2.SendFrame(10, safety.Critical, testFrame(4)); err != nil {
		t.Fatal(err)
	}
	if m, err := cl2.Read(2 * time.Second); err != nil || m.Status != StatusOK {
		t.Fatalf("post-reconnect frame: %+v, %v", m, err)
	}
	if err := cl2.Close(); err != nil {
		t.Fatal(err)
	}

	// slow-loris: car1's first two frames stall ~30ms each but still
	// serve; the stall is bounded by the armed latency, not unbounded.
	cl3, err := Dial(s.Addr().String(), "fleet", "car1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := cl3.SendFrame(1, safety.Nominal, testFrame(4)); err != nil {
		t.Fatal(err)
	}
	if m, err := cl3.Read(3 * time.Second); err != nil || m.Status != StatusOK {
		t.Fatalf("slow-loris frame: %+v, %v", m, err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("slow-loris stall not applied: %v", elapsed)
	}
	if err := cl3.Close(); err != nil {
		t.Fatal(err)
	}

	// garble-frames: car2's first frame corrupts on the wire and draws
	// a bad-frame reject; the connection survives and the next frame
	// serves.
	cl4, err := Dial(s.Addr().String(), "fleet", "car2", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl4.SendFrame(1, safety.Nominal, testFrame(16)); err != nil {
		t.Fatal(err)
	}
	m, err := cl4.Read(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != TypeReject || m.Reason != ReasonBadFrame {
		t.Fatalf("garbled frame drew %+v, want bad-frame reject", m)
	}
	if err := cl4.SendFrame(2, safety.Emergency, testFrame(16)); err != nil {
		t.Fatal(err)
	}
	if m, err := cl4.Read(2 * time.Second); err != nil || m.Status != StatusOK {
		t.Fatalf("post-garble frame: %+v, %v", m, err)
	}
	if err := cl4.Close(); err != nil {
		t.Fatal(err)
	}
	if obs.rejectedOf("bad-frame") == 0 {
		t.Error("garble drill left no bad-frame rejection trace")
	}

	shutdown()
	assertNoGoroutineLeak(t, baseline)
}

func TestServerShutdownIdempotent(t *testing.T) {
	b := newStubBackend(1, 4, 0)
	s, _ := startServer(t, Config{}, b)
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown %d: %v", i, err)
		}
		cancel()
	}
	b.Close()
}
