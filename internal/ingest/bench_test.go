package ingest

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/safety"
)

// benchObs records enqueue latencies for the p99 gate on top of the
// counter recording the tests share.
type benchObs struct {
	recObs
	emu      sync.Mutex
	enqueueD []time.Duration
}

func (o *benchObs) ObserveIngestEnqueue(d time.Duration) {
	o.emu.Lock()
	o.enqueueD = append(o.enqueueD, d)
	o.emu.Unlock()
	o.recObs.ObserveIngestEnqueue(d)
}

func (o *benchObs) p99EnqueueMicros() float64 {
	o.emu.Lock()
	defer o.emu.Unlock()
	if len(o.enqueueD) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), o.enqueueD...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return float64(sorted[len(sorted)*99/100].Microseconds())
}

// BenchmarkIngest drives the full TCP path — handshake, frames, shed
// queue, stub backend, result routing — at 1/8/64 vehicles and reports
// frames/sec, shed_ratio, and p99_enqueue_us. The backend is pinned at a
// finite service rate so higher vehicle counts genuinely overload the
// queue; the p99 enqueue latency staying flat under that overload is the
// sheds-before-blocking property scripts/bench_ingest.sh gates on.
func BenchmarkIngest(b *testing.B) {
	for _, vehicles := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("vehicles=%d", vehicles), func(b *testing.B) {
			benchIngest(b, vehicles)
		})
	}
}

func benchIngest(b *testing.B, vehicles int) {
	obs := &benchObs{recObs: *newRecObs()}
	back := newStubBackend(2, 8, 100*time.Microsecond)
	s, err := Listen(Config{Backend: back, Observer: obs, QueueCap: 64, Pumps: 2}, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	frame := testFrame(64)
	perVehicle := b.N / vehicles
	if perVehicle < 1 {
		perVehicle = 1
	}
	total := perVehicle * vehicles

	b.ResetTimer()
	var wg sync.WaitGroup
	for v := 0; v < vehicles; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			cl, err := Dial(s.Addr().String(), "bench", fmt.Sprintf("car%d", v), 5*time.Second)
			if err != nil {
				b.Error(err)
				return
			}
			defer func() {
				_ = cl.Close() //lint:allow(errdrop) bench teardown
			}()
			// Reader: every accepted frame (all of them — no rate limits
			// armed) is owed exactly one RESULT, served or shed.
			var got atomic.Int64
			results := make(chan struct{})
			go func() {
				defer close(results)
				for got.Load() < int64(perVehicle) {
					m, err := cl.Read(10 * time.Second)
					if err != nil {
						b.Error(err)
						return
					}
					if m.Type == TypeResult {
						got.Add(1)
					}
				}
			}()
			for i := 0; i < perVehicle; i++ {
				// Flow control, like the replay generator's: never run more
				// than half the server's write buffer ahead of the results
				// stream, or the echoes of our own shed frames would get the
				// connection severed as a slow client.
				for int64(i)-got.Load() >= 128 {
					time.Sleep(50 * time.Microsecond)
				}
				if err := cl.SendFrame(uint64(i+1), safety.Criticality(i%4), frame); err != nil {
					b.Error(err)
					return
				}
			}
			<-results
		}(v)
	}
	wg.Wait()
	elapsed := b.Elapsed()
	b.StopTimer()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
	back.Close()

	if elapsed > 0 {
		b.ReportMetric(float64(total)/elapsed.Seconds(), "frames/sec")
	}
	accepted := obs.acceptedTotal()
	if accepted > 0 {
		b.ReportMetric(float64(obs.shedTotal())/float64(accepted), "shed_ratio")
	}
	b.ReportMetric(obs.p99EnqueueMicros(), "p99_enqueue_us")
}
