package ingest

import (
	"sync"
	"testing"
	"time"

	"repro/internal/safety"
)

// recObs records every Observer call for assertions.
type recObs struct {
	mu           sync.Mutex
	accepted     map[string]int
	rejected     map[string]int
	shed         map[string]int
	backpressure int
	conns        int
	depth        map[string]int
	enqueues     int
	frames       int
}

func newRecObs() *recObs {
	return &recObs{
		accepted: map[string]int{}, rejected: map[string]int{},
		shed: map[string]int{}, depth: map[string]int{},
	}
}

func (o *recObs) ObserveIngestAccepted(class string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.accepted[class]++
}
func (o *recObs) ObserveIngestRejected(reason string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rejected[reason]++
}
func (o *recObs) ObserveIngestShed(class string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.shed[class]++
}
func (o *recObs) ObserveIngestBackpressure() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.backpressure++
}
func (o *recObs) SetIngestConnections(n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.conns = n
}
func (o *recObs) SetIngestQueueDepth(class string, depth int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.depth[class] = depth
}
func (o *recObs) ObserveIngestEnqueue(time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.enqueues++
}
func (o *recObs) ObserveIngestFrameLatency(time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.frames++
}

func (o *recObs) shedOf(class string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.shed[class]
}
func (o *recObs) acceptedTotal() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, v := range o.accepted {
		n += v
	}
	return n
}
func (o *recObs) shedTotal() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, v := range o.shed {
		n += v
	}
	return n
}
func (o *recObs) rejectedOf(reason string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rejected[reason]
}

func qItem(class safety.Criticality, seq uint64) *item {
	return &item{class: class, seq: seq}
}

func TestQueueShedsLowestClassFirst(t *testing.T) {
	cq := newClassQueue(4, 4, newRecObs())
	// Fill with two nominal, one elevated, one critical.
	for i, c := range []safety.Criticality{safety.Nominal, safety.Nominal, safety.Elevated, safety.Critical} {
		victims, ok := cq.Push(qItem(c, uint64(i)))
		if !ok || len(victims) != 0 {
			t.Fatalf("push %d: victims=%v ok=%v", i, victims, ok)
		}
	}
	// An emergency frame arrives into the full queue: the OLDEST NOMINAL
	// frame sheds, not the newcomer.
	victims, ok := cq.Push(qItem(safety.Emergency, 100))
	if !ok || len(victims) != 1 {
		t.Fatalf("full-queue push: victims=%v ok=%v", victims, ok)
	}
	if victims[0].class != safety.Nominal || victims[0].seq != 0 {
		t.Fatalf("victim = class %v seq %d, want oldest nominal (seq 0)", victims[0].class, victims[0].seq)
	}
	// A nominal frame arriving now (queue full, lowest queued class ==
	// nominal) sheds ITSELF: nothing queued ranks below it.
	self, ok := cq.Push(qItem(safety.Nominal, 101))
	if !ok || len(self) != 1 || self[0].seq != 101 {
		t.Fatalf("incoming-lowest push: victims=%v", self)
	}
	// Service order: highest criticality first, FIFO within a class.
	wantOrder := []uint64{100, 3, 2, 1}
	for i, want := range wantOrder {
		it, ok := cq.Pop()
		if !ok || it.seq != want {
			t.Fatalf("pop %d: seq %d ok=%v, want %d", i, it.seq, ok, want)
		}
	}
}

func TestQueuePerClassCap(t *testing.T) {
	cq := newClassQueue(8, 2, newRecObs())
	if v, _ := cq.Push(qItem(safety.Nominal, 0)); len(v) != 0 {
		t.Fatal("unexpected shed")
	}
	if v, _ := cq.Push(qItem(safety.Nominal, 1)); len(v) != 0 {
		t.Fatal("unexpected shed")
	}
	// Third nominal exceeds the class cap even though the queue has
	// room: freshest-wins within the class, the oldest sheds.
	v, ok := cq.Push(qItem(safety.Nominal, 2))
	if !ok || len(v) != 1 || v[0].seq != 0 {
		t.Fatalf("class-cap push: victims=%v", v)
	}
	if cq.Depth() != 2 {
		t.Fatalf("depth = %d want 2", cq.Depth())
	}
}

func TestQueuePushNeverBlocks(t *testing.T) {
	cq := newClassQueue(2, 2, newRecObs())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10_000; i++ {
			cq.Push(qItem(safety.Nominal, uint64(i)))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Push blocked on a full queue — sheds-before-blocking violated")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	cq := newClassQueue(8, 8, newRecObs())
	for i := 0; i < 3; i++ {
		cq.Push(qItem(safety.Elevated, uint64(i)))
	}
	cq.Close()
	if _, ok := cq.Push(qItem(safety.Emergency, 99)); ok {
		t.Fatal("push accepted after Close")
	}
	for i := 0; i < 3; i++ {
		if _, ok := cq.Pop(); !ok {
			t.Fatalf("pop %d: queue lost a queued frame at close", i)
		}
	}
	if _, ok := cq.Pop(); ok {
		t.Fatal("pop after drain returned a frame")
	}
	// A blocked Pop wakes on Close.
	cq2 := newClassQueue(2, 2, newRecObs())
	woke := make(chan struct{})
	go func() {
		defer close(woke)
		cq2.Pop()
	}()
	time.Sleep(10 * time.Millisecond)
	cq2.Close()
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Pop did not wake on Close")
	}
}

func TestQueueConcurrentPushPop(t *testing.T) {
	obs := newRecObs()
	cq := newClassQueue(16, 16, obs)
	const producers, perProducer = 4, 500
	var popped, shed int
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			it, ok := cq.Pop()
			if !ok {
				return
			}
			_ = it
			mu.Lock()
			popped++
			mu.Unlock()
			select {
			case <-stop:
			default:
			}
		}
	}()
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				victims, ok := cq.Push(qItem(safety.Criticality(i%4), uint64(p*perProducer+i)))
				if !ok {
					t.Error("push refused before close")
					return
				}
				mu.Lock()
				shed += len(victims)
				mu.Unlock()
			}
		}(p)
	}
	pwg.Wait()
	cq.Close()
	wg.Wait()
	close(stop)
	mu.Lock()
	defer mu.Unlock()
	if popped+shed != producers*perProducer {
		t.Fatalf("popped %d + shed %d != pushed %d — frames lost or duplicated", popped, shed, producers*perProducer)
	}
}
