package ingest

import (
	"bytes"
	"testing"

	"repro/internal/safety"
)

// FuzzReadFrame drives the RFR1 reader with arbitrary bytes: it must
// return a typed error or a well-formed Message — never panic, never
// over-read, and an accepted message must re-encode to the identical
// payload (the round-trip property that keeps client and server decoders
// in lockstep).
func FuzzReadFrame(f *testing.F) {
	seed := []*Message{
		{Type: TypeHello, Tenant: "acme", Vehicle: "car0"},
		{Type: TypeWelcome},
		{Type: TypeReject, Reason: ReasonDraining, Text: "bye"},
		{Type: TypeFrame, Seq: 9, Class: safety.Elevated, Frame: testFrame(16)},
		{Type: TypeResult, Seq: 9, Status: StatusOK, Obstacle: true, Confidence: 0.5, Uncertainty: 0.25},
		{Type: TypeRetryAfter, Seq: 0, Millis: 50, Reason: ReasonBackpressure},
	}
	for _, m := range seed {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m, 0); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{4, 0, 0, 0, 'R', 'F', 'R', '1'})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		payload, err := m.Encode()
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %+v: %v", m, err)
		}
		again, err := DecodeMessage(payload)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		if again.Type != m.Type || again.Seq != m.Seq || again.Class != m.Class ||
			again.Status != m.Status || again.Reason != m.Reason || again.Millis != m.Millis ||
			again.Tenant != m.Tenant || again.Vehicle != m.Vehicle || again.Text != m.Text {
			t.Fatalf("round-trip diverged: %+v != %+v", again, m)
		}
		if (m.Frame == nil) != (again.Frame == nil) {
			t.Fatal("frame presence diverged")
		}
	})
}
