package ingest

import "time"

// Clock seams, swapped by tests so admission refills, deadlines, and
// latency observations replay deterministically (and so the detrand
// analyzer can hold this package to the no-bare-time.Now rule).
var (
	now   = time.Now
	sleep = time.Sleep
)
