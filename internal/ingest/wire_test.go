package ingest

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/safety"
	"repro/internal/tensor"
)

// testFrame builds a small deterministic tensor.
func testFrame(n int) *tensor.Tensor {
	f := tensor.New(n)
	data := f.Data()
	for i := range data {
		data[i] = float32(i%7) * 0.25
	}
	return f
}

func TestWireRoundTrip(t *testing.T) {
	frame := testFrame(9)
	msgs := []*Message{
		{Type: TypeHello, Tenant: "acme", Vehicle: "car0"},
		{Type: TypeHello, Vehicle: "car1"}, // empty tenant is the default tenant
		{Type: TypeWelcome},
		{Type: TypeReject, Reason: ReasonConnLimit, Text: "cap"},
		{Type: TypeFrame, Seq: 42, Class: safety.Emergency, Frame: frame},
		{Type: TypeResult, Seq: 42, Status: StatusOK, Obstacle: true, Confidence: 0.93, Uncertainty: 0.12},
		{Type: TypeResult, Seq: 7, Status: StatusError, Text: "boom"},
		{Type: TypeResult, Seq: 8, Status: StatusShed},
		{Type: TypeRetryAfter, Seq: 3, Millis: 250, Reason: ReasonRateLimited},
		{Type: TypeRetryAfter, Seq: 0, Millis: 50, Reason: ReasonBackpressure},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m, 0); err != nil {
			t.Fatalf("write %d: %v", m.Type, err)
		}
		got, err := ReadMessage(&buf, 0)
		if err != nil {
			t.Fatalf("read %d: %v", m.Type, err)
		}
		if got.Type != m.Type || got.Tenant != m.Tenant || got.Vehicle != m.Vehicle ||
			got.Reason != m.Reason || got.Text != m.Text || got.Seq != m.Seq ||
			got.Class != m.Class || got.Status != m.Status || got.Obstacle != m.Obstacle ||
			got.Confidence != m.Confidence || got.Uncertainty != m.Uncertainty || got.Millis != m.Millis { //lint:allow(floateq) bit-exact round-trip through Float64bits
			t.Errorf("type %d: round-trip %+v != %+v", m.Type, got, m)
		}
		if m.Frame != nil {
			if got.Frame == nil || got.Frame.Len() != m.Frame.Len() {
				t.Fatalf("frame lost in round-trip")
			}
			for i, v := range m.Frame.Data() {
				if got.Frame.Data()[i] != v { //lint:allow(floateq) bit-exact wire round-trip
					t.Fatalf("frame pixel %d: %v != %v", i, got.Frame.Data()[i], v)
				}
			}
		}
		if buf.Len() != 0 {
			t.Errorf("type %d: %d bytes left after read", m.Type, buf.Len())
		}
	}
}

func TestWireSequentialMessages(t *testing.T) {
	var buf bytes.Buffer
	for seq := uint64(0); seq < 5; seq++ {
		if err := WriteMessage(&buf, &Message{Type: TypeFrame, Seq: seq, Class: safety.Nominal, Frame: testFrame(4)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for seq := uint64(0); seq < 5; seq++ {
		m, err := ReadMessage(&buf, 0)
		if err != nil {
			t.Fatalf("message %d: %v", seq, err)
		}
		if m.Seq != seq {
			t.Fatalf("message order broken: got seq %d want %d", m.Seq, seq)
		}
	}
}

func TestWireRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	big := testFrame(1024)
	if err := WriteMessage(&buf, &Message{Type: TypeFrame, Seq: 1, Class: 0, Frame: big}, 64); err == nil {
		t.Error("oversize write accepted")
	}
	// A hostile length prefix is refused before any allocation.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	if _, err := ReadPayload(&buf, 1024); !errors.Is(err, ErrTooLarge) {
		t.Errorf("hostile prefix: err = %v, want ErrTooLarge", err)
	}
}

func TestWireDecodeRejects(t *testing.T) {
	valid := func(m *Message) []byte {
		p, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	frame := valid(&Message{Type: TypeFrame, Seq: 1, Class: safety.Critical, Frame: testFrame(4)})
	cases := map[string][]byte{
		"empty":            {},
		"bad magic":        []byte("XXXX\x01"),
		"magic only":       []byte(wireMagic),
		"unknown type":     append([]byte(wireMagic), 0x7F),
		"truncated hello":  valid(&Message{Type: TypeHello, Tenant: "t", Vehicle: "v"})[:8],
		"truncated frame":  frame[:len(frame)-3],
		"trailing garbage": append(append([]byte{}, valid(&Message{Type: TypeWelcome})...), 0xAB),
		"bad class":        append(append([]byte(wireMagic), TypeFrame), []byte{1, 0, 0, 0, 0, 0, 0, 0, 9}...),
		"frame w/o tensor": append(append([]byte(wireMagic), TypeFrame), []byte{1, 0, 0, 0, 0, 0, 0, 0, 0}...),
	}
	for name, payload := range cases {
		if m, err := DecodeMessage(payload); err == nil {
			t.Errorf("%s: accepted as %+v", name, m)
		}
	}
	// Empty-vehicle HELLO is well-formed bytes but semantically invalid.
	p := valid(&Message{Type: TypeHello, Tenant: "t", Vehicle: "v"})
	p[len(p)-3] = 0 // vehicle length 1 → 0, then drop the byte
	if _, err := DecodeMessage(p[:len(p)-1]); err == nil {
		t.Error("empty vehicle accepted")
	}
}

func TestWireNameBound(t *testing.T) {
	long := strings.Repeat("x", maxName+1)
	if _, err := (&Message{Type: TypeHello, Tenant: long, Vehicle: "v"}).Encode(); err == nil {
		t.Error("oversized tenant encoded")
	}
}

func TestReasonAndStatusStrings(t *testing.T) {
	for r, want := range map[Reason]string{
		ReasonRateLimited:  "rate-limited",
		ReasonConnLimit:    "conn-limit",
		ReasonDraining:     "draining",
		ReasonBadFrame:     "bad-frame",
		ReasonTooLarge:     "too-large",
		ReasonBackpressure: "backpressure",
		ReasonProtocol:     "protocol",
	} {
		if r.String() != want {
			t.Errorf("Reason(%d) = %q want %q", r, r.String(), want)
		}
	}
	for s, want := range map[Status]string{
		StatusOK: "ok", StatusShed: "shed", StatusError: "error", StatusQuarantined: "quarantined",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q want %q", s, s.String(), want)
		}
	}
}
