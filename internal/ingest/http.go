package ingest

// http.go is the HTTP handler variant of the front end: one POST is one
// frame, answered synchronously. It shares the server's admission
// controller, shed queue, pumps, and router — an HTTP frame and a TCP
// frame are indistinguishable past the front door — so the shed policy
// and metrics stay coherent across both entrances.
//
//	POST /ingest?vehicle=car0&class=2     body: RSNT tensor bytes
//	headers: X-RPN-Tenant (optional)
//
//	200 JSON  {"seq":…,"status":"ok","obstacle":…,"confidence":…,"uncertainty":…}
//	200 JSON  status "error"/"quarantined" with "error" detail
//	429       rate-limited or shed; Retry-After header in seconds
//	503       draining; Retry-After header
//	400       malformed request (missing vehicle, bad class, bad tensor)

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro/internal/safety"
	"repro/internal/tensor"
)

// httpDoc is the JSON response body.
type httpDoc struct {
	Seq         uint64  `json:"seq"`
	Status      string  `json:"status"`
	Obstacle    bool    `json:"obstacle,omitempty"`
	Confidence  float64 `json:"confidence,omitempty"`
	Uncertainty float64 `json:"uncertainty,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// httpReply is the resultSink of one synchronous HTTP request.
type httpReply struct{ ch chan *Message }

func (r *httpReply) deliver(m *Message) bool {
	select {
	case r.ch <- m:
		return true
	default:
		// The request already timed out and nobody is listening; the
		// result is dropped exactly as a disconnected TCP client's would
		// be.
		return false
	}
}

// httpSeq numbers HTTP frames server-side (TCP clients pick their own
// seqs; HTTP clients correlate by response instead).
var httpSeq atomic.Uint64

// Handler returns the HTTP variant mounted on the same server. Requests
// are admitted per-frame: the tenant's token bucket applies, connection
// caps do not (an HTTP request holds no standing slot).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		arrived := now()
		vehicle := req.URL.Query().Get("vehicle")
		if vehicle == "" {
			http.Error(w, "vehicle parameter required", http.StatusBadRequest)
			return
		}
		classN, err := strconv.Atoi(req.URL.Query().Get("class"))
		if err != nil || classN < 0 || classN >= safety.NumClasses {
			http.Error(w, "class must be 0..3", http.StatusBadRequest)
			return
		}
		class := safety.Criticality(classN)
		tenant := req.Header.Get("X-RPN-Tenant")

		if s.draining.Load() {
			s.obs.ObserveIngestRejected(ReasonDraining.String())
			retryAfterSeconds(w, drainRetryMillis)
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if wait, ok := s.adm.AllowFrame(tenant, arrived); !ok {
			s.obs.ObserveIngestRejected(ReasonRateLimited.String())
			retryAfterSeconds(w, ceilMillis(wait))
			http.Error(w, "rate limited", http.StatusTooManyRequests)
			return
		}
		frame := &tensor.Tensor{}
		if _, err := frame.ReadFrom(io.LimitReader(req.Body, int64(s.cfg.MaxPayload))); err != nil {
			s.obs.ObserveIngestRejected(ReasonBadFrame.String())
			http.Error(w, fmt.Sprintf("bad frame: %v", err), http.StatusBadRequest)
			return
		}
		reply := &httpReply{ch: make(chan *Message, 1)}
		it := &item{
			sink:    reply,
			seq:     httpSeq.Add(1),
			class:   class,
			frame:   frame,
			model:   s.cfg.ModelFor(vehicle),
			arrived: arrived,
		}
		s.pendingWG.Add(1)
		victims, ok := s.queue.Push(it)
		if !ok {
			s.pendingWG.Done()
			s.obs.ObserveIngestRejected(ReasonDraining.String())
			retryAfterSeconds(w, drainRetryMillis)
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		s.obs.ObserveIngestAccepted(class.String())
		s.obs.ObserveIngestEnqueue(now().Sub(arrived))
		for _, v := range victims {
			s.obs.ObserveIngestShed(v.class.String())
			s.finish(v, &Message{Type: TypeResult, Seq: v.seq, Status: StatusShed})
		}
		select {
		case m := <-reply.ch:
			writeHTTPResult(w, m)
		case <-req.Context().Done():
			// The result, when it lands, hits the sink's full-buffer
			// fallback and is dropped; pendingWG still retires through
			// finish, so drain accounting stays exact.
			http.Error(w, "request cancelled", http.StatusGatewayTimeout)
		}
	})
}

// retryAfterSeconds sets the standard Retry-After header (whole seconds,
// rounded up, minimum 1).
func retryAfterSeconds(w http.ResponseWriter, millis uint32) {
	secs := (millis + 999) / 1000
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatUint(uint64(secs), 10))
}

// writeHTTPResult renders one RESULT message as the HTTP response.
func writeHTTPResult(w http.ResponseWriter, m *Message) {
	doc := httpDoc{Seq: m.Seq, Status: m.Status.String(), Error: m.Text}
	code := http.StatusOK
	switch m.Status {
	case StatusOK:
		doc.Obstacle = m.Obstacle
		doc.Confidence = m.Confidence
		doc.Uncertainty = m.Uncertainty
	case StatusShed:
		code = http.StatusTooManyRequests
		retryAfterSeconds(w, drainRetryMillis)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(doc) //lint:allow(errdrop) response write failure means the client disconnected; nothing to recover
}
