package ingest

// queue.go is the bounded per-criticality queue between the network
// readers and the dispatcher pumps, and the home of the load-shedding
// policy: Push NEVER blocks. When the queue is full, room is made by
// shedding the oldest frame of the lowest-criticality class — or the
// incoming frame itself, if nothing queued ranks below it. Blocking
// would let a burst of nominal-class frames delay an emergency frame
// behind a full channel; shedding inverts that, so under overload the
// queue composition drifts upward in criticality and emergency frames
// are the last standing. This reuses the safety-class ranking the budget
// governor already orders the fleet by (safety.Criticality, increasing
// danger).

import (
	"sync"
	"time"

	"repro/internal/safety"
	"repro/internal/tensor"
)

// item is one accepted frame waiting for (or in) service.
type item struct {
	// sink receives the frame's RESULT (or shed notice).
	sink resultSink
	// seq is the client's frame sequence number, echoed in the result.
	seq uint64
	// class is the frame's safety class, the shed ranking key.
	class safety.Criticality
	// frame is the decoded sensor tensor.
	frame *tensor.Tensor
	// model is the fleet instance that will serve the frame.
	model string
	// arrived is when the front end first saw the frame, for the
	// end-to-end latency histogram.
	arrived time.Time
}

// classQueue is the bounded queue. All methods are safe for concurrent
// use; Pop blocks, Push never does.
type classQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	// capTotal bounds frames across all classes; capClass bounds one
	// class (so a nominal flood cannot monopolize even its own share of
	// an otherwise empty queue's headroom forever).
	capTotal int
	capClass int
	total    int
	q        [safety.NumClasses][]*item
	closed   bool
	obs      Observer
}

func newClassQueue(capTotal, capClass int, obs Observer) *classQueue {
	if capTotal < 1 {
		capTotal = 1
	}
	if capClass < 1 || capClass > capTotal {
		capClass = capTotal
	}
	cq := &classQueue{capTotal: capTotal, capClass: capClass, obs: obs}
	cq.cond = sync.NewCond(&cq.mu)
	return cq
}

// Push enqueues the frame, shedding to make room per the class policy.
// It returns the shed victims (possibly containing it itself) for the
// caller to answer with StatusShed, and ok=false only when the queue is
// closed (the frame was not enqueued and nothing was shed).
func (cq *classQueue) Push(it *item) (victims []*item, ok bool) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if cq.closed {
		return nil, false
	}
	if len(cq.q[it.class]) >= cq.capClass {
		// The frame's own class is saturated: freshest-wins within a
		// class, so the oldest same-class frame goes.
		victims = append(victims, cq.popOldestLocked(it.class))
	} else if cq.total >= cq.capTotal {
		// The queue as a whole is full: evict from the lowest non-empty
		// class if it ranks below the incoming frame, else the incoming
		// frame is the lowest-value work in sight and sheds itself.
		low := cq.lowestLocked()
		if low < it.class {
			victims = append(victims, cq.popOldestLocked(low))
		} else {
			cq.obs.SetIngestQueueDepth(it.class.String(), len(cq.q[it.class]))
			return append(victims, it), true
		}
	}
	cq.q[it.class] = append(cq.q[it.class], it)
	cq.total++
	cq.obs.SetIngestQueueDepth(it.class.String(), len(cq.q[it.class]))
	cq.cond.Signal()
	return victims, true
}

// lowestLocked returns the lowest class with queued frames. Caller holds
// cq.mu and guarantees total > 0.
func (cq *classQueue) lowestLocked() safety.Criticality {
	for c := 0; c < safety.NumClasses; c++ {
		if len(cq.q[c]) > 0 {
			return safety.Criticality(c)
		}
	}
	return safety.Criticality(safety.NumClasses - 1)
}

// popOldestLocked removes and returns the oldest frame of a class.
// Caller holds cq.mu and guarantees the class is non-empty.
func (cq *classQueue) popOldestLocked(c safety.Criticality) *item {
	it := cq.q[c][0]
	cq.q[c] = cq.q[c][1:]
	cq.total--
	cq.obs.SetIngestQueueDepth(c.String(), len(cq.q[c]))
	return it
}

// Pop blocks until a frame is available and returns the
// highest-criticality one (FIFO within a class), or nil, false once the
// queue is closed and empty — the pumps' drain-then-exit signal.
func (cq *classQueue) Pop() (*item, bool) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	for cq.total == 0 && !cq.closed {
		cq.cond.Wait()
	}
	if cq.total == 0 {
		return nil, false
	}
	for c := safety.NumClasses - 1; c >= 0; c-- {
		if len(cq.q[c]) > 0 {
			return cq.popOldestLocked(safety.Criticality(c)), true
		}
	}
	return nil, false
}

// Depth returns the total queued frame count.
func (cq *classQueue) Depth() int {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return cq.total
}

// Close stops Push (it reports not-ok) and lets Pop drain what remains;
// blocked Pops wake. Idempotent.
func (cq *classQueue) Close() {
	cq.mu.Lock()
	cq.closed = true
	cq.mu.Unlock()
	cq.cond.Broadcast()
}
