package ingest

import (
	"testing"
	"time"
)

func TestAdmissionConnCaps(t *testing.T) {
	a := newAdmission(TenantLimits{MaxConns: 2}, map[string]TenantLimits{
		"vip": {MaxConns: 3},
	})
	at := time.Unix(1000, 0)

	var releases []func()
	for i := 0; i < 2; i++ {
		rel, _, ok := a.AdmitConn("acme", at)
		if !ok {
			t.Fatalf("conn %d refused below cap", i)
		}
		releases = append(releases, rel)
	}
	if _, reason, ok := a.AdmitConn("acme", at); ok || reason != ReasonConnLimit {
		t.Fatalf("third conn: ok=%v reason=%v, want conn-limit refusal", ok, reason)
	}
	// Another tenant's cap is independent.
	for i := 0; i < 3; i++ {
		rel, _, ok := a.AdmitConn("vip", at)
		if !ok {
			t.Fatalf("vip conn %d refused below its override cap", i)
		}
		releases = append(releases, rel)
	}
	if a.Conns() != 5 {
		t.Fatalf("Conns() = %d want 5", a.Conns())
	}
	// Release frees the slot; double-release must not double-free.
	releases[0]()
	releases[0]()
	if a.Conns() != 4 {
		t.Fatalf("Conns() after release = %d want 4", a.Conns())
	}
	if _, _, ok := a.AdmitConn("acme", at); !ok {
		t.Fatal("slot not reusable after release")
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	a := newAdmission(TenantLimits{FramesPerSec: 10, Burst: 2}, nil)
	at := time.Unix(1000, 0)

	// Burst capacity: two frames pass, the third is refused with a wait
	// hint that, once slept, yields a token.
	for i := 0; i < 2; i++ {
		if _, ok := a.AllowFrame("acme", at); !ok {
			t.Fatalf("burst frame %d refused", i)
		}
	}
	wait, ok := a.AllowFrame("acme", at)
	if ok {
		t.Fatal("frame above burst admitted")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("wait hint %v, want (0, 100ms] at 10 fps", wait)
	}
	if _, ok := a.AllowFrame("acme", at.Add(wait)); !ok {
		t.Fatal("frame refused after sleeping the advertised wait")
	}
	// Refill is capped at burst: a long idle stretch does not bank
	// unbounded tokens.
	at = at.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if _, ok := a.AllowFrame("acme", at); !ok {
			t.Fatalf("post-idle frame %d refused", i)
		}
	}
	if _, ok := a.AllowFrame("acme", at); ok {
		t.Fatal("idle stretch banked more than the burst capacity")
	}
	// A clock step backwards refuses refill rather than corrupting the
	// bucket.
	if _, ok := a.AllowFrame("acme", at.Add(-time.Minute)); ok {
		t.Fatal("backwards clock minted tokens")
	}
}

func TestAdmissionUnlimitedByDefault(t *testing.T) {
	a := newAdmission(TenantLimits{}, nil)
	at := time.Unix(1000, 0)
	for i := 0; i < 1000; i++ {
		if _, ok := a.AllowFrame("anyone", at); !ok {
			t.Fatal("unlimited tenant rate-limited")
		}
	}
	for i := 0; i < 100; i++ {
		if _, _, ok := a.AdmitConn("anyone", at); !ok {
			t.Fatal("unlimited tenant conn-capped")
		}
	}
}
