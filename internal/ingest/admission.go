package ingest

// admission.go is the front door's admission controller: per-tenant
// connection caps and token-bucket frame rate limits. Admission decides
// *before* work enters the system — a rejected connection costs one
// handshake, a rate-limited frame costs one RETRY-AFTER — which is what
// keeps the criticality queues meaningful: they hold only work the server
// intends to serve.

import (
	"sync"
	"time"
)

// TenantLimits bounds one tenant's footprint on the front end. The zero
// value means unlimited on every axis.
type TenantLimits struct {
	// MaxConns caps the tenant's concurrent admitted connections
	// (0: unlimited).
	MaxConns int
	// FramesPerSec is the tenant's token-bucket refill rate across all of
	// its connections (0: unlimited).
	FramesPerSec float64
	// Burst is the bucket capacity — how many frames may arrive
	// back-to-back after an idle stretch. 0 defaults to FramesPerSec
	// (a one-second burst) with a floor of 1.
	Burst float64
}

// burst returns the effective bucket capacity.
func (l TenantLimits) burst() float64 {
	b := l.Burst
	if b <= 0 {
		b = l.FramesPerSec
	}
	if b < 1 {
		b = 1
	}
	return b
}

// tenantState is one tenant's live admission state.
type tenantState struct {
	conns  int
	tokens float64
	last   time.Time
}

// admission is the controller. All methods are safe for concurrent use.
type admission struct {
	mu sync.Mutex
	// limits are per-tenant overrides; def applies to everyone else.
	limits map[string]TenantLimits
	def    TenantLimits
	state  map[string]*tenantState
	total  int
}

func newAdmission(def TenantLimits, overrides map[string]TenantLimits) *admission {
	a := &admission{def: def, state: map[string]*tenantState{}}
	if len(overrides) > 0 {
		a.limits = make(map[string]TenantLimits, len(overrides))
		for t, l := range overrides {
			a.limits[t] = l
		}
	}
	return a
}

// limitsFor returns the tenant's effective limits.
func (a *admission) limitsFor(tenant string) TenantLimits {
	if l, ok := a.limits[tenant]; ok {
		return l
	}
	return a.def
}

// tenant returns (creating) the tenant's state. Caller holds a.mu.
func (a *admission) tenant(name string, at time.Time) *tenantState {
	s, ok := a.state[name]
	if !ok {
		s = &tenantState{tokens: a.limitsFor(name).burst(), last: at}
		a.state[name] = s
	}
	return s
}

// AdmitConn admits one connection for the tenant, or reports the typed
// refusal. On admission the returned release function MUST be called
// exactly once when the connection ends.
func (a *admission) AdmitConn(tenant string, at time.Time) (release func(), reason Reason, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lim := a.limitsFor(tenant)
	s := a.tenant(tenant, at)
	if lim.MaxConns > 0 && s.conns >= lim.MaxConns {
		return nil, ReasonConnLimit, false
	}
	s.conns++
	a.total++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			s.conns--
			a.total--
			a.mu.Unlock()
		})
	}, ReasonNone, true
}

// Conns returns the admitted connection count across all tenants.
func (a *admission) Conns() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// AllowFrame spends one token from the tenant's bucket. When the bucket
// is empty it refuses and returns how long the client should wait for the
// next token — the RETRY-AFTER hint.
func (a *admission) AllowFrame(tenant string, at time.Time) (wait time.Duration, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lim := a.limitsFor(tenant)
	if lim.FramesPerSec <= 0 {
		return 0, true
	}
	s := a.tenant(tenant, at)
	// Refill for the elapsed interval, capped at the burst capacity. A
	// clock step backwards (test clock swap, NTP) refills nothing rather
	// than draining the bucket.
	if dt := at.Sub(s.last); dt > 0 {
		s.tokens += dt.Seconds() * lim.FramesPerSec
		if b := lim.burst(); s.tokens > b {
			s.tokens = b
		}
	}
	s.last = at
	if s.tokens >= 1 {
		s.tokens--
		return 0, true
	}
	deficit := 1 - s.tokens
	return time.Duration(deficit / lim.FramesPerSec * float64(time.Second)), false
}
