package ingest

// server.go is the TCP front end: the accept loop, the per-connection
// reader/writer pair, the dispatcher pumps, and the result router.
//
// Data path: reader → admission (rate limit) → classQueue (shed policy)
// → pump → Backend.SubmitTagged(tag: *pending) → router ranges
// Backend.Results() and delivers each RESULT to the tag's sink. The tag
// carries the origin through the dispatcher, so results route without a
// seq-indexed map (which the result arriving before the map write would
// race).
//
// Every accepted frame is owed exactly one RESULT — served, shed, or
// error — tracked by the pending WaitGroup; graceful drain is "stop
// accepting, flush the queues, wait for pending to hit zero" under a
// context deadline. The invariant the overload e2e pins down:
// accepted = delivered results, and rpn_ingest_shed_total{class} counts
// exactly the StatusShed deliveries per class.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/tensor"
)

// Backend is the inference fan-out behind the front end.
// fleet.Dispatcher satisfies it; tests substitute stubs for precise
// overload control.
type Backend interface {
	// SubmitTagged queues one frame for the named instance; the frame's
	// Result carries tag back verbatim.
	SubmitTagged(model string, frame *tensor.Tensor, tag any) (int64, error)
	// Results is the completion stream.
	Results() <-chan fleet.Result
}

// resultSink receives one frame's RESULT; TCP connections and HTTP
// requests both implement it.
type resultSink interface {
	// deliver hands over the result; false means the sink is gone (the
	// result is dropped — its client already disconnected).
	deliver(m *Message) bool
}

// Config parameterizes a Server. Backend is required; every other zero
// value gets the documented default.
type Config struct {
	// Backend serves accepted frames.
	Backend Backend
	// DefaultLimits applies to tenants without an override in Tenants.
	// The zero value is unlimited.
	DefaultLimits TenantLimits
	// Tenants maps tenant name → limits override.
	Tenants map[string]TenantLimits
	// QueueCap bounds total queued frames across classes (default 64);
	// ClassCap bounds one class (default QueueCap).
	QueueCap int
	ClassCap int
	// Pumps is the number of queue→backend pump goroutines (default 2).
	Pumps int
	// MaxPayload bounds one message's payload bytes (default
	// DefaultMaxPayload).
	MaxPayload int
	// IdleTimeout reaps connections with no traffic (default 30s): the
	// per-read deadline, so a slow-loris peer cannot hold a slot open by
	// trickling nothing.
	IdleTimeout time.Duration
	// WriteTimeout bounds one message write (default 10s); a client not
	// draining its results is severed when it expires.
	WriteTimeout time.Duration
	// HighWatermark is the queue depth that triggers advisory
	// RETRY-AFTER backpressure (default 3/4 of QueueCap).
	HighWatermark int
	// RetryHint is the pause advisory backpressure suggests, and the
	// minimum interval between advisories per connection (default 50ms).
	RetryHint time.Duration
	// ModelFor maps a vehicle name to its fleet instance name (default:
	// identity).
	ModelFor func(vehicle string) string
	// Observer receives the rpn_ingest_* telemetry (default: none).
	Observer Observer
	// Injector, when non-nil, arms the wire fault point on every
	// received message (chaos drills: conn-drop, slow-loris,
	// garble-frames).
	Injector *fault.Injector
}

// pending is the dispatcher tag of one in-flight accepted frame.
type pending struct{ it *item }

// Server is the running front end.
type Server struct {
	cfg   Config
	ln    net.Listener
	adm   *admission
	queue *classQueue
	obs   Observer

	// wg joins every goroutine the server owns: accept loop, pumps,
	// router, per-connection readers and writers.
	wg sync.WaitGroup
	// pendingWG counts accepted frames whose RESULT has not yet been
	// handed to its sink; Shutdown waits for it to drain.
	pendingWG  sync.WaitGroup
	draining   atomic.Bool
	stopRouter chan struct{}

	mu    sync.Mutex
	conns map[*serverConn]struct{}
}

// Serve starts a front end on an existing listener and returns
// immediately; the accept loop, pumps, and router run until Shutdown.
func Serve(cfg Config, ln net.Listener) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("ingest: Config.Backend is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.ClassCap <= 0 {
		cfg.ClassCap = cfg.QueueCap
	}
	if cfg.Pumps <= 0 {
		cfg.Pumps = 2
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.HighWatermark <= 0 {
		cfg.HighWatermark = cfg.QueueCap * 3 / 4
	}
	if cfg.RetryHint <= 0 {
		cfg.RetryHint = 50 * time.Millisecond
	}
	if cfg.ModelFor == nil {
		cfg.ModelFor = func(vehicle string) string { return vehicle }
	}
	if cfg.Observer == nil {
		cfg.Observer = nopObserver{}
	}
	s := &Server{
		cfg:        cfg,
		ln:         ln,
		adm:        newAdmission(cfg.DefaultLimits, cfg.Tenants),
		obs:        cfg.Observer,
		stopRouter: make(chan struct{}),
		conns:      map[*serverConn]struct{}{},
	}
	s.queue = newClassQueue(cfg.QueueCap, cfg.ClassCap, cfg.Observer)
	s.wg.Add(1)
	go s.acceptLoop()
	for i := 0; i < cfg.Pumps; i++ {
		s.wg.Add(1)
		go s.pump()
	}
	s.wg.Add(1)
	go s.router()
	return s, nil
}

// Listen opens a TCP listener on addr and serves on it.
func Listen(cfg Config, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ingest: listen %s: %w", addr, err)
	}
	s, err := Serve(cfg, ln)
	if err != nil {
		_ = ln.Close() //lint:allow(errdrop) listener never served; nothing to flush
		return nil, err
	}
	return s, nil
}

// Addr returns the listener's address, for clients started on port 0.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// QueueDepth returns the current total queued frame count (tests and the
// /healthz surface read it).
func (s *Server) QueueDepth() int { return s.queue.Depth() }

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			// Listener closed (Shutdown) or fatally broken; either way
			// the accept loop is done.
			return
		}
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// handleConn runs one connection: HELLO handshake, admission, then the
// frame read loop until the peer hangs up, a deadline reaps it, or the
// server tears it down.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	sc, ok := s.handshake(c)
	if !ok {
		return
	}
	s.readFrames(sc)
	sc.teardown()
	// The writer owns the socket close (it must flush queued results
	// first); the reader only unregisters and releases admission.
	s.dropConn(sc)
}

// rejectAndClose answers a pre-admission failure and closes the socket
// directly (no writer goroutine exists yet).
func (s *Server) rejectAndClose(c net.Conn, reason Reason, text string) {
	s.obs.ObserveIngestRejected(reason.String())
	if err := c.SetWriteDeadline(now().Add(s.cfg.WriteTimeout)); err == nil {
		_ = WriteMessage(c, &Message{Type: TypeReject, Reason: reason, Text: text}, s.cfg.MaxPayload) //lint:allow(errdrop) best-effort courtesy reject; the close is the real signal
	}
	_ = c.Close() //lint:allow(errdrop) inbound socket, nothing buffered to flush
}

// handshake performs HELLO → WELCOME/REJECT and registers the
// connection. ok=false means the socket is already closed.
func (s *Server) handshake(c net.Conn) (*serverConn, bool) {
	if err := c.SetReadDeadline(now().Add(s.cfg.IdleTimeout)); err != nil {
		_ = c.Close() //lint:allow(errdrop) socket already unusable
		return nil, false
	}
	m, err := ReadMessage(c, s.cfg.MaxPayload)
	if err != nil || m.Type != TypeHello {
		s.rejectAndClose(c, ReasonProtocol, "expected HELLO")
		return nil, false
	}
	if s.draining.Load() {
		s.rejectAndClose(c, ReasonDraining, "server draining")
		return nil, false
	}
	release, reason, ok := s.adm.AdmitConn(m.Tenant, now())
	if !ok {
		s.rejectAndClose(c, reason, "tenant connection cap reached")
		return nil, false
	}
	s.obs.SetIngestConnections(s.adm.Conns())
	sc := &serverConn{
		srv:     s,
		c:       c,
		tenant:  m.Tenant,
		vehicle: m.Vehicle,
		out:     make(chan *Message, 256),
		done:    make(chan struct{}),
		release: release,
	}
	s.mu.Lock()
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	s.wg.Add(1)
	go sc.writeLoop()
	if !sc.send(&Message{Type: TypeWelcome}) {
		sc.teardown()
		s.dropConn(sc)
		return nil, false
	}
	return sc, true
}

// dropConn unregisters and releases one connection's admission slot.
func (s *Server) dropConn(sc *serverConn) {
	s.mu.Lock()
	delete(s.conns, sc)
	s.mu.Unlock()
	sc.release()
	s.obs.SetIngestConnections(s.adm.Conns())
}

// readFrames is the per-connection frame loop.
func (s *Server) readFrames(sc *serverConn) {
	for {
		if err := sc.c.SetReadDeadline(now().Add(s.cfg.IdleTimeout)); err != nil {
			return
		}
		payload, err := ReadPayload(sc.c, s.cfg.MaxPayload)
		if err != nil {
			if errors.Is(err, ErrTooLarge) {
				s.obs.ObserveIngestRejected(ReasonTooLarge.String())
				sc.send(&Message{Type: TypeReject, Reason: ReasonTooLarge, Text: err.Error()})
			}
			// EOF, idle deadline, teardown kick, or an oversized claim:
			// the stream is unrecoverable past a bad length prefix.
			return
		}
		if s.cfg.Injector != nil {
			drop, stall := s.cfg.Injector.OnWire(sc.vehicle, payload)
			if stall > 0 {
				sleep(stall)
			}
			if drop {
				return
			}
		}
		m, err := DecodeMessage(payload)
		if err != nil {
			// Framing is length-prefixed, so one garbled payload does not
			// desynchronize the stream; reject the message, keep the
			// connection (chaos garble windows would otherwise sever every
			// peer they touch).
			s.obs.ObserveIngestRejected(ReasonBadFrame.String())
			sc.send(&Message{Type: TypeReject, Reason: ReasonBadFrame, Text: err.Error()})
			continue
		}
		if m.Type != TypeFrame {
			s.obs.ObserveIngestRejected(ReasonProtocol.String())
			sc.send(&Message{Type: TypeReject, Reason: ReasonProtocol, Text: fmt.Sprintf("unexpected type %d", m.Type)})
			continue
		}
		s.handleFrame(sc, m)
	}
}

// drainRetryMillis is the pause suggested to clients whose frames arrive
// during drain: long enough to re-resolve and reconnect elsewhere.
const drainRetryMillis = 1000

// handleFrame runs one FRAME through rate limiting and the shed queue.
func (s *Server) handleFrame(sc *serverConn, m *Message) {
	arrived := now()
	if s.draining.Load() {
		s.obs.ObserveIngestRejected(ReasonDraining.String())
		sc.send(&Message{Type: TypeRetryAfter, Seq: m.Seq, Millis: drainRetryMillis, Reason: ReasonDraining})
		return
	}
	if wait, ok := s.adm.AllowFrame(sc.tenant, arrived); !ok {
		s.obs.ObserveIngestRejected(ReasonRateLimited.String())
		sc.send(&Message{Type: TypeRetryAfter, Seq: m.Seq, Millis: ceilMillis(wait), Reason: ReasonRateLimited})
		return
	}
	it := &item{
		sink:    sc,
		seq:     m.Seq,
		class:   m.Class,
		frame:   m.Frame,
		model:   s.cfg.ModelFor(sc.vehicle),
		arrived: arrived,
	}
	s.pendingWG.Add(1)
	victims, ok := s.queue.Push(it)
	if !ok {
		// Closed under us (drain raced the flag check).
		s.pendingWG.Done()
		s.obs.ObserveIngestRejected(ReasonDraining.String())
		sc.send(&Message{Type: TypeRetryAfter, Seq: m.Seq, Millis: drainRetryMillis, Reason: ReasonDraining})
		return
	}
	s.obs.ObserveIngestAccepted(it.class.String())
	s.obs.ObserveIngestEnqueue(now().Sub(arrived))
	for _, v := range victims {
		s.obs.ObserveIngestShed(v.class.String())
		s.finish(v, &Message{Type: TypeResult, Seq: v.seq, Status: StatusShed})
	}
	if s.queue.Depth() >= s.cfg.HighWatermark {
		sc.maybeAdvisory(arrived)
	}
}

// ceilMillis converts a wait to whole milliseconds, rounding up so a
// client sleeping the advertised time always finds a token.
func ceilMillis(d time.Duration) uint32 {
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms < 1 {
		ms = 1
	}
	if ms > 1<<31 {
		ms = 1 << 31
	}
	return uint32(ms)
}

// finish delivers one accepted frame's RESULT and retires its pending
// slot. Exactly one finish runs per accepted frame.
func (s *Server) finish(it *item, m *Message) {
	it.sink.deliver(m)
	s.pendingWG.Done()
}

// pump moves frames from the shed queue into the backend until the queue
// closes and drains. The *pending tag routes the result back.
func (s *Server) pump() {
	defer s.wg.Done()
	for {
		it, ok := s.queue.Pop()
		if !ok {
			return
		}
		if _, err := s.cfg.Backend.SubmitTagged(it.model, it.frame, &pending{it: it}); err != nil {
			s.finish(it, &Message{Type: TypeResult, Seq: it.seq, Status: StatusError, Text: err.Error()})
		}
	}
}

// router delivers backend results to their origin sinks until the
// results channel closes or Shutdown stops it.
func (s *Server) router() {
	defer s.wg.Done()
	results := s.cfg.Backend.Results()
	for {
		select {
		case res, ok := <-results:
			if !ok {
				return
			}
			s.route(res)
		case <-s.stopRouter:
			return
		}
	}
}

// route turns one backend Result into a RESULT message for its sink.
// Results without a *pending tag belong to other submitters (in-process
// loops sharing the dispatcher) and pass by untouched.
func (s *Server) route(res fleet.Result) {
	p, ok := res.Tag.(*pending)
	if !ok {
		return
	}
	m := &Message{Type: TypeResult, Seq: p.it.seq}
	switch {
	case res.Err == nil:
		m.Status = StatusOK
		m.Obstacle = res.Detection.Obstacle
		m.Confidence = res.Detection.Confidence
		m.Uncertainty = res.Detection.Uncertainty
		s.obs.ObserveIngestFrameLatency(now().Sub(p.it.arrived))
	case errors.Is(res.Err, fleet.ErrQuarantined):
		m.Status = StatusQuarantined
		m.Text = res.Err.Error()
	default:
		m.Status = StatusError
		m.Text = res.Err.Error()
	}
	s.finish(p.it, m)
}

// Shutdown drains gracefully: reject new connections and frames, close
// the listener, flush the queue through the pumps, wait (bounded by ctx)
// for every accepted frame's result to be delivered, then tear down
// connections — writers flush queued results before closing sockets —
// and join every goroutine. Returns ctx's error if the deadline cut the
// result wait short, else nil. Idempotent for sequential calls.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	_ = s.ln.Close() //lint:allow(errdrop) double-close on repeated Shutdown is the only error path
	s.queue.Close()

	drained := make(chan struct{})
	go func() {
		s.pendingWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	select {
	case <-s.stopRouter:
		// Already stopped by a prior Shutdown.
	default:
		close(s.stopRouter)
	}
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.teardown()
	}
	s.wg.Wait()
	return err
}

// serverConn is one admitted TCP connection. The reader goroutine
// (readFrames) and a dedicated writer goroutine (writeLoop) share it;
// results from pumps and the router arrive through out.
type serverConn struct {
	srv     *Server
	c       net.Conn
	tenant  string
	vehicle string
	// out carries outbound messages to the writer; done closes exactly
	// once at teardown.
	out  chan *Message
	done chan struct{}
	once sync.Once
	// release returns the admission slot; called by dropConn.
	release func()

	advMu        sync.Mutex
	lastAdvisory time.Time
}

// send queues one outbound message. A full out buffer means the client
// is not draining its results: the connection is severed rather than
// letting one slow client block the caller (a pump or another
// connection's reader delivering a shed notice).
func (sc *serverConn) send(m *Message) bool {
	select {
	case sc.out <- m:
		return true
	case <-sc.done:
		return false
	default:
		sc.teardown()
		return false
	}
}

// deliver implements resultSink.
func (sc *serverConn) deliver(m *Message) bool { return sc.send(m) }

// maybeAdvisory pushes one advisory RETRY-AFTER if none was sent within
// the hint interval — queue pressure is per-server, the advisory
// per-connection, so a hot queue doesn't flood every client every frame.
func (sc *serverConn) maybeAdvisory(at time.Time) {
	sc.advMu.Lock()
	due := sc.lastAdvisory.IsZero() || at.Sub(sc.lastAdvisory) >= sc.srv.cfg.RetryHint
	if due {
		sc.lastAdvisory = at
	}
	sc.advMu.Unlock()
	if !due {
		return
	}
	sc.srv.obs.ObserveIngestBackpressure()
	sc.send(&Message{Type: TypeRetryAfter, Seq: 0, Millis: ceilMillis(sc.srv.cfg.RetryHint), Reason: ReasonBackpressure})
}

// teardown marks the connection dead exactly once: done closes (writer
// flushes and closes the socket; pending sends fail fast) and the read
// deadline trips immediately so a blocked reader wakes.
func (sc *serverConn) teardown() {
	sc.once.Do(func() {
		close(sc.done)
		_ = sc.c.SetReadDeadline(now()) //lint:allow(errdrop) best-effort kick; a dead socket already unblocked the reader
	})
}

// write sends one message with the write deadline armed.
func (sc *serverConn) write(m *Message) bool {
	if err := sc.c.SetWriteDeadline(now().Add(sc.srv.cfg.WriteTimeout)); err != nil {
		return false
	}
	return WriteMessage(sc.c, m, sc.srv.cfg.MaxPayload) == nil
}

// writeLoop owns the socket's write side and its final close: it drains
// out until teardown, then flushes whatever is still queued (graceful
// drain must not lose results already produced) and closes the socket.
func (sc *serverConn) writeLoop() {
	defer sc.srv.wg.Done()
	defer func() {
		_ = sc.c.Close() //lint:allow(errdrop) final close after flush; the peer sees the FIN either way
	}()
	for {
		select {
		case m := <-sc.out:
			if !sc.write(m) {
				sc.teardown()
				return
			}
		case <-sc.done:
			for {
				select {
				case m := <-sc.out:
					if !sc.write(m) {
						return
					}
				default:
					return
				}
			}
		}
	}
}
