// Package ingest is the fleet's network front end: a stdlib-only,
// length-prefixed TCP protocol (and an HTTP handler variant) that accepts
// concurrent frame streams from remote vehicles and feeds them to the
// fleet dispatcher.
//
// Robustness is the design center, in the paper's sense of graceful
// degradation under pressure: per-tenant token-bucket rate limits and
// connection caps reject at admission time with a typed reason; accepted
// frames land in bounded per-criticality queues whose load-shedder drops
// the lowest safety class first (the budget governor's ranking, reused);
// backpressure reaches clients as explicit RETRY-AFTER frames; idle
// connections are reaped by read deadlines; shutdown drains — stop
// accepting, flush the queues, deliver every accepted frame's result —
// under a context-bound deadline. The wire fault point (fault.Injector
// OnWire) lets chaos drills sever connections, trickle reads slow-loris
// style, and garble payloads at the network layer.
//
// This file is the RFR1 wire format. A message is a uint32 little-endian
// length prefix followed by that many payload bytes; the payload opens
// with the 4-byte magic "RFR1" and a type byte:
//
//	HELLO       tenant and vehicle identity; opens every connection
//	WELCOME     the server's admission grant
//	REJECT      typed admission refusal (connection- or frame-level)
//	FRAME       seq, safety class, and an RSNT-encoded sensor frame
//	RESULT      one FRAME's outcome: served, shed, error, quarantined
//	RETRY-AFTER typed backpressure: when to retry, and why
//
// Strings are uint16-length-prefixed UTF-8 (bounded by maxName); floats
// are IEEE-754 bits, little-endian like every integer. The frame tensor
// rides in the tensor package's RSNT binary format, whose reader already
// bounds rank, element count, and per-read allocation — ReadMessage adds
// the outer payload bound on top, so a hostile length prefix cannot force
// an allocation larger than the configured maximum.
package ingest

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/safety"
	"repro/internal/tensor"
)

const (
	// wireMagic opens every RFR1 payload.
	wireMagic = "RFR1"
	// DefaultMaxPayload bounds one message's payload bytes unless the
	// server or client is configured otherwise: generous for any real
	// frame (a 64×64 float32 frame is ~16 KiB), small enough that a
	// hostile length prefix cannot balloon memory.
	DefaultMaxPayload = 1 << 20
	// maxName bounds the tenant and vehicle identifier strings.
	maxName = 256
)

// Message types.
const (
	// TypeHello is the client's opening identity message.
	TypeHello byte = 1
	// TypeWelcome is the server's admission grant.
	TypeWelcome byte = 2
	// TypeReject is a typed refusal; at the connection level it precedes a
	// close, at the frame level it answers one FRAME.
	TypeReject byte = 3
	// TypeFrame carries one sensor frame with its safety class.
	TypeFrame byte = 4
	// TypeResult answers one FRAME with its outcome.
	TypeResult byte = 5
	// TypeRetryAfter is typed backpressure: the client should pause for
	// the carried duration. Seq 0 is advisory (queue pressure); a nonzero
	// seq answers that FRAME, which was not accepted.
	TypeRetryAfter byte = 6
)

// Reason is the typed cause carried by REJECT and RETRY-AFTER messages.
type Reason uint8

// Reject / retry reasons.
const (
	// ReasonNone is the zero reason (never sent).
	ReasonNone Reason = 0
	// ReasonRateLimited: the tenant's token bucket is empty.
	ReasonRateLimited Reason = 1
	// ReasonConnLimit: the tenant is at its connection cap.
	ReasonConnLimit Reason = 2
	// ReasonDraining: the server is shutting down and accepts no new work.
	ReasonDraining Reason = 3
	// ReasonBadFrame: the message failed to decode.
	ReasonBadFrame Reason = 4
	// ReasonTooLarge: the payload exceeded the server's maximum.
	ReasonTooLarge Reason = 5
	// ReasonBackpressure: advisory queue pressure (RETRY-AFTER seq 0).
	ReasonBackpressure Reason = 6
	// ReasonProtocol: the peer broke message ordering (no HELLO, HELLO
	// twice, an unexpected type).
	ReasonProtocol Reason = 7
)

// String returns the reason's metric label ("rate-limited", …), the same
// string rpn_ingest_rejected_total series carry.
func (r Reason) String() string {
	switch r {
	case ReasonRateLimited:
		return "rate-limited"
	case ReasonConnLimit:
		return "conn-limit"
	case ReasonDraining:
		return "draining"
	case ReasonBadFrame:
		return "bad-frame"
	case ReasonTooLarge:
		return "too-large"
	case ReasonBackpressure:
		return "backpressure"
	case ReasonProtocol:
		return "protocol"
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Status is a RESULT message's outcome code.
type Status uint8

// Result statuses.
const (
	// StatusOK: the frame was served; Detection fields are valid.
	StatusOK Status = 0
	// StatusShed: the load-shedder dropped the frame under overload.
	StatusShed Status = 1
	// StatusError: the backend failed the frame; Text carries the error.
	StatusError Status = 2
	// StatusQuarantined: the frame's instance is fenced by the watchdog.
	StatusQuarantined Status = 3
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusShed:
		return "shed"
	case StatusError:
		return "error"
	case StatusQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Message is one decoded RFR1 message. Which fields are meaningful
// depends on Type; unused fields are zero.
type Message struct {
	// Type is the message type (TypeHello…TypeRetryAfter).
	Type byte
	// Tenant and Vehicle are the HELLO identity strings.
	Tenant  string
	Vehicle string
	// Reason types a REJECT or RETRY-AFTER.
	Reason Reason
	// Text is a REJECT's human-readable detail or a RESULT's error string.
	Text string
	// Seq is the client-chosen frame sequence number (FRAME, RESULT,
	// RETRY-AFTER; 0 in an advisory RETRY-AFTER).
	Seq uint64
	// Class is a FRAME's safety class.
	Class safety.Criticality
	// Frame is a FRAME's sensor tensor.
	Frame *tensor.Tensor
	// Status is a RESULT's outcome.
	Status Status
	// Obstacle, Confidence, Uncertainty are a StatusOK RESULT's detection.
	Obstacle    bool
	Confidence  float64
	Uncertainty float64
	// Millis is a RETRY-AFTER's suggested pause in milliseconds.
	Millis uint32
}

// appendString appends a uint16-length-prefixed string.
func appendString(buf []byte, s string) ([]byte, error) {
	if len(s) > maxName {
		return nil, fmt.Errorf("ingest: string %d bytes exceeds %d", len(s), maxName)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

// Encode renders the message payload (magic, type, body) without the
// outer length prefix.
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, wireMagic...)
	buf = append(buf, m.Type)
	var err error
	switch m.Type {
	case TypeHello:
		if buf, err = appendString(buf, m.Tenant); err != nil {
			return nil, err
		}
		if buf, err = appendString(buf, m.Vehicle); err != nil {
			return nil, err
		}
	case TypeWelcome:
		// Empty body.
	case TypeReject:
		buf = append(buf, byte(m.Reason))
		if buf, err = appendString(buf, m.Text); err != nil {
			return nil, err
		}
	case TypeFrame:
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		if m.Class < 0 || int(m.Class) >= safety.NumClasses {
			return nil, fmt.Errorf("ingest: encode: bad safety class %d", m.Class)
		}
		buf = append(buf, byte(m.Class))
		if m.Frame == nil {
			return nil, fmt.Errorf("ingest: encode: FRAME without tensor")
		}
		w := sliceWriter{buf: buf}
		if _, err := m.Frame.WriteTo(&w); err != nil {
			return nil, err
		}
		buf = w.buf
	case TypeResult:
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		buf = append(buf, byte(m.Status))
		if m.Obstacle {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Confidence))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Uncertainty))
		if buf, err = appendString(buf, m.Text); err != nil {
			return nil, err
		}
	case TypeRetryAfter:
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, m.Millis)
		buf = append(buf, byte(m.Reason))
	default:
		return nil, fmt.Errorf("ingest: encode: unknown message type %d", m.Type)
	}
	return buf, nil
}

// sliceWriter adapts an append-grown byte slice to io.Writer for
// Tensor.WriteTo without copying through a bytes.Buffer.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// WriteMessage frames and writes one message: length prefix plus payload
// in a single Write call, so concurrent writers serialized by a lock never
// interleave partial messages.
func WriteMessage(w io.Writer, m *Message, maxPayload int) error {
	payload, err := m.Encode()
	if err != nil {
		return err
	}
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("ingest: payload %d bytes exceeds maximum %d", len(payload), maxPayload)
	}
	framed := make([]byte, 0, 4+len(payload))
	framed = binary.LittleEndian.AppendUint32(framed, uint32(len(payload)))
	framed = append(framed, payload...)
	if _, err := w.Write(framed); err != nil {
		return fmt.Errorf("ingest: write message: %w", err)
	}
	return nil
}

// ErrTooLarge reports a length prefix above the configured maximum. The
// server answers it with REJECT too-large; anything else wrapping it is a
// protocol error.
var ErrTooLarge = fmt.Errorf("ingest: message exceeds maximum payload")

// ReadPayload reads one message's raw payload bytes (length prefix
// stripped, magic still in place). The server reads payloads raw so the
// wire fault point can corrupt them before decoding, exactly where real
// line noise would.
func ReadPayload(r io.Reader, maxPayload int) ([]byte, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > uint32(maxPayload) {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, maxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("ingest: read payload: %w", err)
	}
	return payload, nil
}

// byteCursor walks a payload with explicit bounds checks; every decode
// error is typed, never a panic (slice indexing is pre-checked).
type byteCursor struct {
	buf []byte
	off int
}

func (c *byteCursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.buf) {
		return nil, fmt.Errorf("ingest: truncated message (need %d bytes at offset %d of %d)", n, c.off, len(c.buf))
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *byteCursor) u8() (byte, error) {
	b, err := c.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *byteCursor) u16() (uint16, error) {
	b, err := c.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (c *byteCursor) u32() (uint32, error) {
	b, err := c.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *byteCursor) u64() (uint64, error) {
	b, err := c.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *byteCursor) str() (string, error) {
	n, err := c.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxName {
		return "", fmt.Errorf("ingest: string %d bytes exceeds %d", n, maxName)
	}
	b, err := c.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// DecodeMessage decodes one payload (as returned by ReadPayload) into a
// Message. Trailing bytes after a complete body are a protocol error —
// a frame whose tensor under-consumes the payload is garbled, not short.
func DecodeMessage(payload []byte) (*Message, error) {
	c := &byteCursor{buf: payload}
	mg, err := c.bytes(len(wireMagic))
	if err != nil {
		return nil, err
	}
	if string(mg) != wireMagic {
		return nil, fmt.Errorf("ingest: bad magic %q", mg)
	}
	t, err := c.u8()
	if err != nil {
		return nil, err
	}
	m := &Message{Type: t}
	switch t {
	case TypeHello:
		if m.Tenant, err = c.str(); err != nil {
			return nil, err
		}
		if m.Vehicle, err = c.str(); err != nil {
			return nil, err
		}
		if m.Vehicle == "" {
			return nil, fmt.Errorf("ingest: HELLO with empty vehicle")
		}
	case TypeWelcome:
		// Empty body.
	case TypeReject:
		r, err := c.u8()
		if err != nil {
			return nil, err
		}
		m.Reason = Reason(r)
		if m.Text, err = c.str(); err != nil {
			return nil, err
		}
	case TypeFrame:
		if m.Seq, err = c.u64(); err != nil {
			return nil, err
		}
		cl, err := c.u8()
		if err != nil {
			return nil, err
		}
		if int(cl) >= safety.NumClasses {
			return nil, fmt.Errorf("ingest: bad safety class %d", cl)
		}
		m.Class = safety.Criticality(cl)
		rest, err := c.bytes(len(c.buf) - c.off)
		if err != nil {
			return nil, err
		}
		rd := &sliceReader{buf: rest}
		frame := &tensor.Tensor{}
		if _, err := frame.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("ingest: frame tensor: %w", err)
		}
		if rd.off != len(rest) {
			return nil, fmt.Errorf("ingest: %d trailing bytes after frame tensor", len(rest)-rd.off)
		}
		m.Frame = frame
		return m, nil
	case TypeResult:
		if m.Seq, err = c.u64(); err != nil {
			return nil, err
		}
		st, err := c.u8()
		if err != nil {
			return nil, err
		}
		m.Status = Status(st)
		ob, err := c.u8()
		if err != nil {
			return nil, err
		}
		m.Obstacle = ob != 0
		cf, err := c.u64()
		if err != nil {
			return nil, err
		}
		m.Confidence = math.Float64frombits(cf)
		un, err := c.u64()
		if err != nil {
			return nil, err
		}
		m.Uncertainty = math.Float64frombits(un)
		if m.Text, err = c.str(); err != nil {
			return nil, err
		}
	case TypeRetryAfter:
		if m.Seq, err = c.u64(); err != nil {
			return nil, err
		}
		if m.Millis, err = c.u32(); err != nil {
			return nil, err
		}
		r, err := c.u8()
		if err != nil {
			return nil, err
		}
		m.Reason = Reason(r)
	default:
		return nil, fmt.Errorf("ingest: unknown message type %d", t)
	}
	if c.off != len(c.buf) {
		return nil, fmt.Errorf("ingest: %d trailing bytes after message body", len(c.buf)-c.off)
	}
	return m, nil
}

// sliceReader is a minimal io.Reader over a byte slice that tracks its
// offset, so DecodeMessage can reject under-consumed frame payloads.
type sliceReader struct {
	buf []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.buf) {
		return 0, io.EOF
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

// ReadMessage reads and decodes one framed message.
func ReadMessage(r io.Reader, maxPayload int) (*Message, error) {
	payload, err := ReadPayload(r, maxPayload)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(payload)
}
