package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// postFrame POSTs one RSNT tensor to the handler.
func postFrame(t *testing.T, url, vehicle, class, tenant string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/ingest?vehicle="+vehicle+"&class="+class, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-RPN-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func frameBytes(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := testFrame(n).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHTTPIngest(t *testing.T) {
	obs := newRecObs()
	b := newStubBackend(2, 8, 0)
	s, shutdown := startServer(t, Config{Observer: obs}, b)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp := postFrame(t, hs.URL, "car0", "2", "acme", frameBytes(t, 16))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d want 200", resp.StatusCode)
	}
	var doc httpDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || !doc.Obstacle || doc.Seq == 0 {
		t.Fatalf("doc = %+v", doc)
	}
	if obs.acceptedTotal() != 1 {
		t.Errorf("accepted = %d want 1", obs.acceptedTotal())
	}
	shutdown()

	// Draining: the same POST now draws 503 with a Retry-After hint.
	resp = postFrame(t, hs.URL, "car0", "2", "acme", frameBytes(t, 16))
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("post-drain status = %d retry-after %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	b := newStubBackend(1, 4, 0)
	s, shutdown := startServer(t, Config{}, b)
	defer shutdown()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	cases := []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"GET", func() *http.Response {
			resp, err := http.Get(hs.URL + "/ingest?vehicle=car0&class=0")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusMethodNotAllowed},
		{"no vehicle", func() *http.Response {
			return postFrame(t, hs.URL, "", "0", "", frameBytes(t, 4))
		}, http.StatusBadRequest},
		{"bad class", func() *http.Response {
			return postFrame(t, hs.URL, "car0", "9", "", frameBytes(t, 4))
		}, http.StatusBadRequest},
		{"bad body", func() *http.Response {
			return postFrame(t, hs.URL, "car0", "0", "", []byte("not a tensor"))
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := tc.do()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d want %d", tc.name, resp.StatusCode, tc.want)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHTTPRateLimit(t *testing.T) {
	obs := newRecObs()
	b := newStubBackend(1, 4, 0)
	s, shutdown := startServer(t, Config{
		Observer: obs,
		Tenants:  map[string]TenantLimits{"slow": {FramesPerSec: 2, Burst: 1}},
	}, b)
	defer shutdown()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	body := frameBytes(t, 4)
	resp := postFrame(t, hs.URL, "car0", "0", "slow", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d", resp.StatusCode)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	resp = postFrame(t, hs.URL, "car0", "0", "slow", body)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("over-rate POST: %d retry-after %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if obs.rejectedOf("rate-limited") != 1 {
		t.Errorf("rejected{rate-limited} = %d want 1", obs.rejectedOf("rate-limited"))
	}
}

func TestHTTPContextCancel(t *testing.T) {
	b := newStubBackend(1, 1, 50*time.Millisecond)
	s, shutdown := startServer(t, Config{}, b)
	defer shutdown()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		hs.URL+"/ingest?vehicle=car0&class=0", bytes.NewReader(frameBytes(t, 4)))
	if err != nil {
		t.Fatal(err)
	}
	// Either the client context trips first (transport error) or the
	// handler answers 504; both mean the slot was not leaked — shutdown
	// below would hang if the pending frame never retired.
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
