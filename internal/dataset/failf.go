package dataset

import "fmt"

// failf panics with the formatted message. It is this package's single
// sanctioned panic site under the nopanic analyzer: generator configs and sample indices are validated programmer inputs; the documented API contract is to panic on misuse.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) //lint:allow(nopanic) documented programmer-error invariant
}
