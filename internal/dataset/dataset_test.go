package dataset

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

func TestSignsShapeAndBalance(t *testing.T) {
	d := Signs(DefaultSignConfig(60, 1))
	if d.Len() != 60 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.NumClasses() != 6 {
		t.Fatalf("NumClasses = %d", d.NumClasses())
	}
	shape := d.SampleShape()
	if shape[0] != 1 || shape[1] != 16 || shape[2] != 16 {
		t.Fatalf("sample shape %v", shape)
	}
	for c, n := range d.ClassCounts() {
		if n != 10 {
			t.Errorf("class %d count %d, want 10", c, n)
		}
	}
}

func TestSignsDeterminism(t *testing.T) {
	a := Signs(DefaultSignConfig(30, 7))
	b := Signs(DefaultSignConfig(30, 7))
	if !tensor.Equal(a.X, b.X) {
		t.Error("same seed produced different data")
	}
	c := Signs(DefaultSignConfig(30, 8))
	if tensor.Equal(a.X, c.X) {
		t.Error("different seeds produced identical data")
	}
}

func TestSignsClassesAreDistinguishable(t *testing.T) {
	// Mean images of different classes should differ substantially;
	// otherwise the classification task is degenerate.
	d := Signs(SignConfig{N: 300, Size: 16, Noise: 0, Jitter: false, Seed: 2})
	plane := 16 * 16
	means := make([][]float32, d.NumClasses())
	counts := make([]int, d.NumClasses())
	for i := range means {
		means[i] = make([]float32, plane)
	}
	for s := 0; s < d.Len(); s++ {
		y := d.Labels[s]
		counts[y]++
		for p := 0; p < plane; p++ {
			means[y][p] += d.X.Data()[s*plane+p]
		}
	}
	for y := range means {
		for p := range means[y] {
			means[y][p] /= float32(counts[y])
		}
	}
	for a := 0; a < len(means); a++ {
		for b := a + 1; b < len(means); b++ {
			var diff float64
			for p := 0; p < plane; p++ {
				dd := float64(means[a][p] - means[b][p])
				diff += dd * dd
			}
			if diff < 1 {
				t.Errorf("classes %d and %d nearly identical (L2²=%v)", a, b, diff)
			}
		}
	}
}

func TestSampleCopies(t *testing.T) {
	d := Signs(DefaultSignConfig(12, 3))
	s, y := d.Sample(5)
	if y != d.Labels[5] {
		t.Errorf("label mismatch")
	}
	s.Fill(99)
	s2, _ := d.Sample(5)
	if s2.Data()[0] == 99 {
		t.Error("Sample returned a view, want a copy")
	}
}

func TestSplit(t *testing.T) {
	d := Signs(DefaultSignConfig(100, 4))
	tr, te := d.Split(0.8, 5)
	if tr.Len() != 80 || te.Len() != 20 {
		t.Fatalf("split sizes %d/%d", tr.Len(), te.Len())
	}
	if tr.NumClasses() != d.NumClasses() {
		t.Error("split lost class names")
	}
	// Same seed splits identically.
	tr2, _ := d.Split(0.8, 5)
	if !tensor.Equal(tr.X, tr2.X) {
		t.Error("split not deterministic")
	}
}

func TestSplitRejectsDegenerateFraction(t *testing.T) {
	d := Signs(DefaultSignConfig(10, 4))
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("frac %v accepted", frac)
				}
			}()
			d.Split(frac, 1)
		}()
	}
}

func TestObstaclesBalanceAndShape(t *testing.T) {
	d := Obstacles(DefaultObstacleConfig(40, 6))
	counts := d.ClassCounts()
	if counts[0] != 20 || counts[1] != 20 {
		t.Errorf("counts %v", counts)
	}
	if d.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", d.NumClasses())
	}
}

func TestObstaclePatchHasBrightBlob(t *testing.T) {
	rng := tensor.NewRNG(9)
	withObs := RenderObstaclePatch(true, 16, 4, 0, rng)
	clear := RenderObstaclePatch(false, 16, 4, 0, rng)
	maxOf := func(p []float32) float32 {
		m := p[0]
		for _, v := range p {
			if v > m {
				m = v
			}
		}
		return m
	}
	if maxOf(withObs) < 0.7 {
		t.Error("obstacle patch lacks bright blob")
	}
	_ = clear // clear patches may contain lane markings; no assertion on max
}

func TestCorruptLeavesOriginalIntact(t *testing.T) {
	d := Signs(DefaultSignConfig(20, 10))
	orig := d.X.Clone()
	c := Corrupt(d, 11, GaussianNoise{Sigma: 0.5}, Occlusion{Side: 4})
	if !tensor.Equal(d.X, orig) {
		t.Error("Corrupt mutated the original dataset")
	}
	if tensor.Equal(c.X, orig) {
		t.Error("Corrupt returned unchanged data")
	}
	if c.Len() != d.Len() {
		t.Error("Corrupt changed sample count")
	}
}

func TestOcclusionZeroesSquare(t *testing.T) {
	d := Signs(SignConfig{N: 5, Size: 16, Noise: 0, Jitter: false, Seed: 12})
	// Make everything bright so zeros are unambiguous.
	d.X.Fill(1)
	c := Corrupt(d, 13, Occlusion{Side: 4})
	for s := 0; s < c.Len(); s++ {
		zeros := 0
		plane := 16 * 16
		for p := 0; p < plane; p++ {
			if c.X.Data()[s*plane+p] == 0 {
				zeros++
			}
		}
		if zeros != 16 {
			t.Errorf("sample %d has %d zeroed pixels, want 16", s, zeros)
		}
	}
}

func TestBrightnessScales(t *testing.T) {
	d := Signs(SignConfig{N: 3, Size: 8, Noise: 0, Jitter: false, Seed: 14})
	c := Corrupt(d, 15, Brightness{Factor: 0.5})
	for i, v := range d.X.Data() {
		if c.X.Data()[i] != v*0.5 {
			t.Fatalf("pixel %d: %v vs %v", i, c.X.Data()[i], v*0.5)
		}
	}
}

func TestCorruptionNames(t *testing.T) {
	if (GaussianNoise{Sigma: 0.25}).Name() != "gauss(0.25)" {
		t.Error((GaussianNoise{Sigma: 0.25}).Name())
	}
	if (Occlusion{Side: 3}).Name() != "occlude(3)" {
		t.Error(Occlusion{Side: 3}.Name())
	}
	if (Brightness{Factor: 1.5}).Name() != "brightness(1.50)" {
		t.Error(Brightness{Factor: 1.5}.Name())
	}
}

// Property: Subset preserves labels and data for arbitrary index choices.
func TestSubsetProperty(t *testing.T) {
	d := Signs(DefaultSignConfig(24, 16))
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		k := 1 + rng.Intn(24)
		idx := make([]int, k)
		for i := range idx {
			idx[i] = rng.Intn(24)
		}
		sub := d.Subset(idx)
		for i, s := range idx {
			if sub.Labels[i] != d.Labels[s] {
				return false
			}
			a, _ := sub.Sample(i)
			b, _ := d.Sample(s)
			if !tensor.Equal(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSignsAreLearnable is the end-to-end sanity check that the synthetic
// task is actually learnable by the small CNN used in the evaluation — the
// whole evaluation is meaningless otherwise.
func TestSignsAreLearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	d := Signs(DefaultSignConfig(900, 17))
	tr, te := d.Split(0.8, 18)
	rng := tensor.NewRNG(19)
	g := tensor.ConvGeom{InC: 1, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	model := nn.NewSequential("signnet",
		nn.NewConv2D("conv1", g, 8, rng),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", 8, 16, 16, 2, 2, 2, 2),
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 8*8*8, 32, rng),
		nn.NewReLU("relu2"),
		nn.NewDense("fc2", 32, 6, rng),
	)
	train.Fit(model, tr.X, tr.Labels, train.Config{
		Epochs:    8,
		BatchSize: 32,
		Optimizer: train.NewAdam(0.003, 0),
		Seed:      20,
	})
	_, acc := train.Evaluate(model, te.X, te.Labels, 64)
	if acc < 0.9 {
		t.Errorf("sign task should be learnable: test acc %v", acc)
	}
}
