// Package dataset procedurally generates the image datasets used throughout
// the evaluation. The paper's perception workloads (road-sign recognition,
// obstacle detection from camera frames) are substituted with deterministic
// synthetic renderings that exercise the same code paths: convolutional
// feature extraction, class imbalance, sensor noise, and distribution shift
// under degradation. Every generator takes an explicit seed and is
// bit-reproducible.
package dataset

import (
	"repro/internal/tensor"
)

// Dataset is a labeled sample-major image set.
type Dataset struct {
	// X has shape [N, C, H, W].
	X *tensor.Tensor
	// Labels holds one class index per sample.
	Labels []int
	// ClassNames names each class; len(ClassNames) is the class count.
	ClassNames []string
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// NumClasses returns the number of classes.
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// SampleShape returns the per-sample shape [C, H, W].
func (d *Dataset) SampleShape() []int { return d.X.Shape()[1:] }

// Sample returns a copy of sample i as a [C, H, W] tensor with its label.
func (d *Dataset) Sample(i int) (*tensor.Tensor, int) {
	if i < 0 || i >= d.Len() {
		failf("dataset: sample index %d out of range [0,%d)", i, d.Len())
	}
	shape := d.SampleShape()
	n := 1
	for _, s := range shape {
		n *= s
	}
	out := tensor.New(shape...)
	copy(out.Data(), d.X.Data()[i*n:(i+1)*n])
	return out, d.Labels[i]
}

// Split partitions the dataset into a training and a test set, shuffling
// with the given seed. frac is the training fraction in (0,1).
func (d *Dataset) Split(frac float64, seed int64) (train, test *Dataset) {
	if frac <= 0 || frac >= 1 {
		failf("dataset: split fraction %v out of (0,1)", frac)
	}
	n := d.Len()
	rng := tensor.NewRNG(seed)
	perm := rng.Perm(n)
	cut := int(float64(n) * frac)
	if cut == 0 || cut == n {
		failf("dataset: split of %d samples at %v is degenerate", n, frac)
	}
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// Subset returns a new dataset holding copies of the samples at idx.
func (d *Dataset) Subset(idx []int) *Dataset {
	shape := d.SampleShape()
	sampleLen := 1
	for _, s := range shape {
		sampleLen *= s
	}
	x := tensor.New(append([]int{len(idx)}, shape...)...)
	labels := make([]int, len(idx))
	for i, s := range idx {
		if s < 0 || s >= d.Len() {
			failf("dataset: subset index %d out of range [0,%d)", s, d.Len())
		}
		copy(x.Data()[i*sampleLen:(i+1)*sampleLen], d.X.Data()[s*sampleLen:(s+1)*sampleLen])
		labels[i] = d.Labels[s]
	}
	return &Dataset{X: x, Labels: labels, ClassNames: d.ClassNames}
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses())
	for _, y := range d.Labels {
		counts[y]++
	}
	return counts
}
