package dataset

import (
	"fmt"

	"repro/internal/tensor"
)

// Corruption is a sensor-degradation model applied to a dataset, used to
// emulate the distribution shift (fog, glare, partial occlusion) that drives
// the safety-governor experiments.
type Corruption interface {
	// Apply degrades the dataset in place.
	Apply(d *Dataset, rng *tensor.RNG)
	// Name identifies the corruption in logs and tables.
	Name() string
}

// GaussianNoise adds zero-mean Gaussian noise with the given sigma to every
// pixel.
type GaussianNoise struct{ Sigma float64 }

// Name returns a parameterized identifier.
func (g GaussianNoise) Name() string { return fmt.Sprintf("gauss(%.2f)", g.Sigma) }

// Apply adds noise in place.
func (g GaussianNoise) Apply(d *Dataset, rng *tensor.RNG) {
	data := d.X.Data()
	for i := range data {
		data[i] += float32(rng.Normal(0, g.Sigma))
	}
}

// Occlusion blanks a random square of the given side length in every sample,
// emulating lens dirt or partial blockage.
type Occlusion struct{ Side int }

// Name returns a parameterized identifier.
func (o Occlusion) Name() string { return fmt.Sprintf("occlude(%d)", o.Side) }

// Apply blanks one square region per sample.
func (o Occlusion) Apply(d *Dataset, rng *tensor.RNG) {
	shape := d.SampleShape()
	c, h, w := shape[0], shape[1], shape[2]
	if o.Side <= 0 || o.Side > h || o.Side > w {
		failf("dataset: occlusion side %d invalid for %dx%d images", o.Side, h, w)
	}
	data := d.X.Data()
	plane := h * w
	sample := c * plane
	for s := 0; s < d.Len(); s++ {
		y0 := rng.Intn(h - o.Side + 1)
		x0 := rng.Intn(w - o.Side + 1)
		for ch := 0; ch < c; ch++ {
			base := s*sample + ch*plane
			for y := y0; y < y0+o.Side; y++ {
				for x := x0; x < x0+o.Side; x++ {
					data[base+y*w+x] = 0
				}
			}
		}
	}
}

// Brightness scales every pixel by Factor, emulating glare (>1) or low light
// (<1).
type Brightness struct{ Factor float64 }

// Name returns a parameterized identifier.
func (b Brightness) Name() string { return fmt.Sprintf("brightness(%.2f)", b.Factor) }

// Apply scales pixels in place.
func (b Brightness) Apply(d *Dataset, rng *tensor.RNG) {
	d.X.Scale(float32(b.Factor))
}

// Corrupt returns a degraded deep copy of d with every corruption applied in
// order, leaving the original untouched.
func Corrupt(d *Dataset, seed int64, cs ...Corruption) *Dataset {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	out := d.Subset(idx)
	rng := tensor.NewRNG(seed)
	for _, c := range cs {
		c.Apply(out, rng)
	}
	return out
}
