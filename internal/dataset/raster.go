package dataset

// canvas is a single-channel float32 image with simple software
// rasterization primitives. Intensities are conventionally in [0,1].
type canvas struct {
	h, w int
	pix  []float32
}

func newCanvas(h, w int) *canvas {
	return &canvas{h: h, w: w, pix: make([]float32, h*w)}
}

func (c *canvas) fill(v float32) {
	for i := range c.pix {
		c.pix[i] = v
	}
}

func (c *canvas) set(y, x int, v float32) {
	if y >= 0 && y < c.h && x >= 0 && x < c.w {
		c.pix[y*c.w+x] = v
	}
}

// disc fills a circle of radius r centered at (cy, cx).
func (c *canvas) disc(cy, cx, r float64, v float32) {
	r2 := r * r
	for y := 0; y < c.h; y++ {
		dy := float64(y) - cy
		for x := 0; x < c.w; x++ {
			dx := float64(x) - cx
			if dy*dy+dx*dx <= r2 {
				c.pix[y*c.w+x] = v
			}
		}
	}
}

// ring draws a circle outline of radius r and thickness th.
func (c *canvas) ring(cy, cx, r, th float64, v float32) {
	lo := (r - th) * (r - th)
	hi := (r + th) * (r + th)
	for y := 0; y < c.h; y++ {
		dy := float64(y) - cy
		for x := 0; x < c.w; x++ {
			dx := float64(x) - cx
			d2 := dy*dy + dx*dx
			if d2 >= lo && d2 <= hi {
				c.pix[y*c.w+x] = v
			}
		}
	}
}

// triangleDown fills a downward-pointing isoceles triangle with apex at
// (cy+r, cx) and base at cy-r.
func (c *canvas) triangleDown(cy, cx, r float64, v float32) {
	for y := 0; y < c.h; y++ {
		fy := float64(y)
		if fy < cy-r || fy > cy+r {
			continue
		}
		// Width shrinks linearly from full at the base to zero at the apex.
		frac := (cy + r - fy) / (2 * r)
		half := r * frac
		for x := 0; x < c.w; x++ {
			fx := float64(x)
			if fx >= cx-half && fx <= cx+half {
				c.pix[y*c.w+x] = v
			}
		}
	}
}

// triangleLeft fills a left-pointing triangle (apex at cx-r).
func (c *canvas) triangleLeft(cy, cx, r float64, v float32) {
	for x := 0; x < c.w; x++ {
		fx := float64(x)
		if fx < cx-r || fx > cx+r {
			continue
		}
		frac := (fx - (cx - r)) / (2 * r)
		half := r * frac
		for y := 0; y < c.h; y++ {
			fy := float64(y)
			if fy >= cy-half && fy <= cy+half {
				c.pix[y*c.w+x] = v
			}
		}
	}
}

// triangleRight fills a right-pointing triangle (apex at cx+r).
func (c *canvas) triangleRight(cy, cx, r float64, v float32) {
	for x := 0; x < c.w; x++ {
		fx := float64(x)
		if fx < cx-r || fx > cx+r {
			continue
		}
		frac := ((cx + r) - fx) / (2 * r)
		half := r * frac
		for y := 0; y < c.h; y++ {
			fy := float64(y)
			if fy >= cy-half && fy <= cy+half {
				c.pix[y*c.w+x] = v
			}
		}
	}
}

// hbar fills a horizontal bar of half-height th centred on cy spanning
// [cx-r, cx+r].
func (c *canvas) hbar(cy, cx, r, th float64, v float32) {
	for y := 0; y < c.h; y++ {
		fy := float64(y)
		if fy < cy-th || fy > cy+th {
			continue
		}
		for x := 0; x < c.w; x++ {
			fx := float64(x)
			if fx >= cx-r && fx <= cx+r {
				c.pix[y*c.w+x] = v
			}
		}
	}
}

// vbar fills a vertical bar of half-width th centred on cx spanning
// [cy-r, cy+r].
func (c *canvas) vbar(cy, cx, r, th float64, v float32) {
	for y := 0; y < c.h; y++ {
		fy := float64(y)
		if fy < cy-r || fy > cy+r {
			continue
		}
		for x := 0; x < c.w; x++ {
			fx := float64(x)
			if fx >= cx-th && fx <= cx+th {
				c.pix[y*c.w+x] = v
			}
		}
	}
}

// cross draws an X of two diagonal strokes with half-width th within radius
// r of the centre.
func (c *canvas) cross(cy, cx, r, th float64, v float32) {
	for y := 0; y < c.h; y++ {
		dy := float64(y) - cy
		if dy < -r || dy > r {
			continue
		}
		for x := 0; x < c.w; x++ {
			dx := float64(x) - cx
			if dx < -r || dx > r {
				continue
			}
			d1 := dy - dx
			d2 := dy + dx
			if (d1 >= -th && d1 <= th) || (d2 >= -th && d2 <= th) {
				c.pix[y*c.w+x] = v
			}
		}
	}
}

// rect fills an axis-aligned rectangle.
func (c *canvas) rect(y0, x0, y1, x1 int, v float32) {
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			c.set(y, x, v)
		}
	}
}
