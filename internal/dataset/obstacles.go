package dataset

import (
	"repro/internal/tensor"
)

// ObstacleClassNames are the labels of the obstacle-patch detector: class 1
// means an obstacle is present in the patch.
var ObstacleClassNames = []string{"clear", "obstacle"}

// ObstacleConfig parameterizes the obstacle-patch generator, which mimics
// windowed detection over a forward camera: "clear" patches contain only the
// road-texture gradient, "obstacle" patches add a solid blob of varying size
// and position.
type ObstacleConfig struct {
	// N is the number of samples.
	N int
	// Size is the square patch side in pixels (default 16).
	Size int
	// Noise is the additive Gaussian noise sigma (default 0.06). When
	// NoiseMin/NoiseMax are set, each sample instead draws its sigma
	// uniformly from [NoiseMin, NoiseMax] — matching a sensor whose
	// conditions vary frame to frame.
	Noise float64
	// NoiseMin and NoiseMax bound per-sample noise jitter; both zero means
	// fixed Noise.
	NoiseMin, NoiseMax float64
	// MinRadius and MaxRadius bound the obstacle blob radius in pixels
	// (defaults 2 and 5). Smaller obstacles are harder — the evaluation uses
	// radius as a difficulty proxy for "distant pedestrian".
	MinRadius, MaxRadius float64
	// Contrast scales the obstacle blob's intensity; 1 (or 0, the zero
	// value) is full contrast, lower values model fog/low light where the
	// obstacle barely stands out from the road.
	Contrast float64
	// ContrastMin/ContrastMax, when set, draw each sample's contrast
	// uniformly from the range instead of using Contrast.
	ContrastMin, ContrastMax float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultObstacleConfig returns the evaluation configuration.
func DefaultObstacleConfig(n int, seed int64) ObstacleConfig {
	return ObstacleConfig{N: n, Size: 16, Noise: 0.06, MinRadius: 2, MaxRadius: 5, Seed: seed}
}

// Obstacles generates a balanced obstacle/clear patch dataset.
func Obstacles(cfg ObstacleConfig) *Dataset {
	if cfg.N <= 0 {
		failf("dataset: Obstacles with N=%d", cfg.N)
	}
	if cfg.Size == 0 {
		cfg.Size = 16
	}
	if cfg.MinRadius == 0 { //lint:allow(floateq) zero-value config sentinel selects the default
		cfg.MinRadius = 2
	}
	if cfg.MaxRadius == 0 { //lint:allow(floateq) zero-value config sentinel selects the default
		cfg.MaxRadius = 5
	}
	if cfg.MinRadius > cfg.MaxRadius {
		failf("dataset: Obstacles MinRadius %v > MaxRadius %v", cfg.MinRadius, cfg.MaxRadius)
	}
	if cfg.NoiseMin > cfg.NoiseMax {
		failf("dataset: Obstacles NoiseMin %v > NoiseMax %v", cfg.NoiseMin, cfg.NoiseMax)
	}
	rng := tensor.NewRNG(cfg.Seed)
	h := cfg.Size
	x := tensor.New(cfg.N, 1, h, h)
	labels := make([]int, cfg.N)
	plane := h * h
	for i := 0; i < cfg.N; i++ {
		label := i % 2
		labels[i] = label
		sample := cfg
		if cfg.NoiseMax > 0 {
			sample.Noise = rng.Uniform(cfg.NoiseMin, cfg.NoiseMax)
		}
		if cfg.ContrastMax > 0 {
			sample.Contrast = rng.Uniform(cfg.ContrastMin, cfg.ContrastMax)
		}
		img := renderObstaclePatch(label == 1, h, sample, rng)
		copy(x.Data()[i*plane:(i+1)*plane], img)
	}
	return &Dataset{X: x, Labels: labels, ClassNames: append([]string(nil), ObstacleClassNames...)}
}

// RenderObstaclePatch rasterizes a single patch at full contrast; exported
// for the scenario simulator, which feeds patches directly into the
// perception pipeline.
func RenderObstaclePatch(obstacle bool, size int, radius float64, noise float64, rng *tensor.RNG) []float32 {
	return RenderObstaclePatchContrast(obstacle, size, radius, noise, 1, rng)
}

// RenderObstaclePatchContrast rasterizes a single patch with an explicit
// obstacle contrast factor (see ObstacleConfig.Contrast).
func RenderObstaclePatchContrast(obstacle bool, size int, radius, noise, contrast float64, rng *tensor.RNG) []float32 {
	cfg := ObstacleConfig{Size: size, Noise: noise, MinRadius: radius, MaxRadius: radius, Contrast: contrast}
	return renderObstaclePatch(obstacle, size, cfg, rng)
}

func renderObstaclePatch(obstacle bool, size int, cfg ObstacleConfig, rng *tensor.RNG) []float32 {
	c := newCanvas(size, size)
	// Road texture: vertical intensity gradient plus mild horizontal bands.
	base := float32(rng.Uniform(0.1, 0.25))
	for y := 0; y < size; y++ {
		rowV := base + 0.3*float32(y)/float32(size)
		for x := 0; x < size; x++ {
			c.pix[y*size+x] = rowV
		}
	}
	// Lane-marking streak in some patches, in both classes, so the model
	// cannot key on bright pixels alone.
	if rng.Float64() < 0.3 {
		lx := rng.Intn(size)
		c.vbar(float64(size)/2, float64(lx), float64(size)/2, 0.5, 0.7)
	}
	if obstacle {
		contrast := cfg.Contrast
		if contrast <= 0 {
			contrast = 1
		}
		r := rng.Uniform(cfg.MinRadius, cfg.MaxRadius)
		cy := rng.Uniform(r, float64(size)-r)
		cx := rng.Uniform(r, float64(size)-r)
		v := float32(rng.Uniform(0.75, 1.0) * contrast)
		c.disc(cy, cx, r, v)
		// Obstacle shadow directly beneath, fading with the blob.
		c.rect(int(cy+r), int(cx-r/2), int(cy+r+1), int(cx+r/2), 0.05+0.15*(1-float32(contrast)))
	}
	if cfg.Noise > 0 {
		for i := range c.pix {
			c.pix[i] += float32(rng.Normal(0, cfg.Noise))
		}
	}
	for i, v := range c.pix {
		if v < 0 {
			c.pix[i] = 0
		} else if v > 1.5 {
			c.pix[i] = 1.5
		}
	}
	return c.pix
}
