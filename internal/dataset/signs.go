package dataset

import (
	"repro/internal/tensor"
)

// SignClassNames are the road-sign classes of the procedural generator, in
// label order.
var SignClassNames = []string{
	"stop",       // filled disc
	"yield",      // filled downward triangle
	"speed",      // ring with horizontal bar
	"turn-left",  // left-pointing arrowhead with shaft
	"turn-right", // right-pointing arrowhead with shaft
	"crossing",   // X glyph
}

// SignConfig parameterizes the road-sign generator.
type SignConfig struct {
	// N is the number of samples to generate.
	N int
	// Size is the square image side in pixels (default 16).
	Size int
	// Noise is the additive Gaussian noise sigma (default 0.08).
	Noise float64
	// Jitter enables random translation and scale (default true when using
	// DefaultSignConfig).
	Jitter bool
	// Seed drives all randomness.
	Seed int64
}

// DefaultSignConfig returns the configuration used by the evaluation: 16×16
// images with jitter and moderate sensor noise.
func DefaultSignConfig(n int, seed int64) SignConfig {
	return SignConfig{N: n, Size: 16, Noise: 0.08, Jitter: true, Seed: seed}
}

// Signs generates a balanced road-sign classification dataset. Classes are
// assigned round-robin so every class count differs by at most one.
func Signs(cfg SignConfig) *Dataset {
	if cfg.N <= 0 {
		failf("dataset: Signs with N=%d", cfg.N)
	}
	if cfg.Size == 0 {
		cfg.Size = 16
	}
	if cfg.Size < 8 {
		failf("dataset: Signs size %d too small", cfg.Size)
	}
	rng := tensor.NewRNG(cfg.Seed)
	h := cfg.Size
	x := tensor.New(cfg.N, 1, h, h)
	labels := make([]int, cfg.N)
	plane := h * h
	for i := 0; i < cfg.N; i++ {
		label := i % len(SignClassNames)
		labels[i] = label
		img := renderSign(label, h, cfg, rng)
		copy(x.Data()[i*plane:(i+1)*plane], img)
	}
	return &Dataset{X: x, Labels: labels, ClassNames: append([]string(nil), SignClassNames...)}
}

// renderSign rasterizes one sign instance with per-sample jitter and noise.
func renderSign(label, size int, cfg SignConfig, rng *tensor.RNG) []float32 {
	c := newCanvas(size, size)
	bg := float32(rng.Uniform(0.0, 0.15))
	c.fill(bg)

	cy := float64(size) / 2
	cx := float64(size) / 2
	r := float64(size) * 0.35
	if cfg.Jitter {
		cy += rng.Uniform(-1.5, 1.5)
		cx += rng.Uniform(-1.5, 1.5)
		r *= rng.Uniform(0.85, 1.15)
	}
	fg := float32(rng.Uniform(0.75, 1.0))

	switch label {
	case 0: // stop: filled disc
		c.disc(cy, cx, r, fg)
	case 1: // yield: filled downward triangle
		c.triangleDown(cy, cx, r, fg)
	case 2: // speed: ring with a horizontal bar
		c.ring(cy, cx, r, 1.0, fg)
		c.hbar(cy, cx, r*0.6, 0.8, fg)
	case 3: // turn-left: shaft plus left arrowhead
		c.hbar(cy, cx+r*0.2, r*0.7, 0.8, fg)
		c.triangleLeft(cy, cx-r*0.45, r*0.55, fg)
	case 4: // turn-right: shaft plus right arrowhead
		c.hbar(cy, cx-r*0.2, r*0.7, 0.8, fg)
		c.triangleRight(cy, cx+r*0.45, r*0.55, fg)
	case 5: // crossing: X glyph
		c.cross(cy, cx, r, 1.0, fg)
	default:
		failf("dataset: unknown sign label %d", label)
	}

	if cfg.Noise > 0 {
		for i := range c.pix {
			c.pix[i] += float32(rng.Normal(0, cfg.Noise))
		}
	}
	// Clamp to a sane sensor range.
	for i, v := range c.pix {
		if v < 0 {
			c.pix[i] = 0
		} else if v > 1.5 {
			c.pix[i] = 1.5
		}
	}
	return c.pix
}
