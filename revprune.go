// Package revprune is the public facade of the reversible runtime
// neural-network pruning (RRP) library — a Go reproduction of "Back to the
// Future: Reversible Runtime Neural Network Pruning for Safe Autonomous
// Systems" (DATE 2024, Autonomous Systems Design initiative).
//
// The facade re-exports the library's main entry points so applications can
// depend on one import path:
//
//	model  := revprune.NewSequential(...)         // build & train a network
//	plans  := revprune.MagnitudeGlobal{}.PlanNested(model, []float64{0.5, 0.8})
//	rm, _  := revprune.Build(model, plans)        // attach the level library
//	rm.ApplyLevel(2)                              // prune at runtime…
//	rm.RestoreFull()                              // …and reverse it in O(Δweights)
//	gov, _ := revprune.NewGovernor(rm, &revprune.Hysteresis{}, revprune.DefaultContract())
//
// Subsystem packages remain importable directly (repro/internal/...) for
// finer-grained use; this file only aliases, never wraps.
package revprune

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/governor"
	"repro/internal/nn"
	"repro/internal/perception"
	"repro/internal/platform"
	"repro/internal/prune"
	"repro/internal/quant"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Core reversible-pruning types.
type (
	// ReversibleModel is a network with an attached pruning-level library
	// and recovery store; see repro/internal/core.
	ReversibleModel = core.ReversibleModel
	// Level is one calibrated entry of the level library.
	Level = core.Level
	// TransitionStats counts runtime level-transition work.
	TransitionStats = core.TransitionStats
	// CheckpointStore is the refcounted, sealed snapshot of dense weights,
	// masks, and displaced values behind a ReversibleModel; fleet clones
	// attach to it copy-on-write via NewView (see docs/ARCHITECTURE.md,
	// "The memory model").
	CheckpointStore = core.CheckpointStore
)

// ErrStoreCorrupt is the sentinel wrapped by every integrity-checksum
// failure on the restore path; errors.Is(err, ErrStoreCorrupt) means the
// recovery store can no longer reproduce the dense weights and the
// instance must be fenced (the health watchdog quarantines it
// permanently).
var ErrStoreCorrupt = core.ErrStoreCorrupt

// Core constructors.
var (
	// Build wraps a dense model with nested pruning plans.
	Build = core.Build
	// WithHalfPrecisionStore halves the recovery store (lossy restore).
	WithHalfPrecisionStore = core.WithHalfPrecisionStore
	// LoadBundle restores a saved deployment bundle into a model.
	LoadBundle = core.Load
	// LoadSelfContainedBundle reconstructs model + library from a stream.
	LoadSelfContainedBundle = core.LoadSelfContained
	// DesignLevels resolves accuracy targets into a sparsity ladder.
	DesignLevels = core.DesignLevels
)

// Reversible quantization — the companion quality/energy knob.
type (
	// ReversibleQuantizer holds a precision ladder over a model.
	ReversibleQuantizer = quant.ReversibleQuantizer
	// QuantLevel is one rung of the precision ladder.
	QuantLevel = quant.Level
)

var (
	// BuildQuantizer captures the full-precision master and the ladder.
	BuildQuantizer = quant.BuildQuantizer
)

// Pruning types and methods.
type (
	// Mask is a keep-bitset over one parameter tensor.
	Mask = prune.Mask
	// Plan maps parameter names to masks.
	Plan = prune.Plan
	// Method plans nested sparsity families.
	Method = prune.Method
	// MagnitudeGlobal prunes globally smallest weights.
	MagnitudeGlobal = prune.MagnitudeGlobal
	// MagnitudeLayer prunes per-layer smallest weights.
	MagnitudeLayer = prune.MagnitudeLayer
	// RandomPrune prunes uniformly at random (control baseline).
	RandomPrune = prune.Random
	// StructuredChannel prunes whole channels/neurons.
	StructuredChannel = prune.StructuredChannel
)

var (
	// PlanSingle plans one sparsity level with any method.
	PlanSingle = prune.PlanSingle
	// Compact physically shrinks a channel-pruned model.
	Compact = prune.Compact
	// Sensitivity runs per-layer pruning sensitivity analysis.
	Sensitivity = prune.Sensitivity
)

// Network types.
type (
	// Sequential is the model container.
	Sequential = nn.Sequential
	// Layer is one differentiable stage.
	Layer = nn.Layer
	// Param is a named trainable tensor.
	Param = nn.Param
)

var (
	// NewSequential builds a model from layers.
	NewSequential = nn.NewSequential
	// NewDense, NewConv2D, NewReLU, NewMaxPool2D, NewFlatten, NewBatchNorm,
	// NewDropout construct the standard layers.
	NewDense     = nn.NewDense
	NewConv2D    = nn.NewConv2D
	NewReLU      = nn.NewReLU
	NewMaxPool2D = nn.NewMaxPool2D
	NewFlatten   = nn.NewFlatten
	NewBatchNorm = nn.NewBatchNorm
	NewDropout   = nn.NewDropout
)

// Tensor types.
type (
	// Tensor is the dense float32 array type.
	Tensor = tensor.Tensor
	// RNG is the deterministic random source.
	RNG = tensor.RNG
	// ConvGeom describes 2-D convolution geometry.
	ConvGeom = tensor.ConvGeom
)

var (
	// NewRNG seeds a deterministic generator.
	NewRNG = tensor.NewRNG
	// NewTensor allocates a zeroed tensor.
	NewTensor = tensor.New
)

// Training.
type (
	// TrainConfig parameterizes train.Fit.
	TrainConfig = train.Config
	// Optimizer updates parameters from gradients.
	Optimizer = train.Optimizer
)

var (
	// Fit trains a classifier.
	Fit = train.Fit
	// Evaluate scores a classifier.
	Evaluate = train.Evaluate
	// NewSGD and NewAdam construct optimizers.
	NewSGD  = train.NewSGD
	NewAdam = train.NewAdam
)

// Runtime governor.
type (
	// Governor executes the MAPE-K adaptation loop.
	Governor = governor.Governor
	// Policy proposes levels.
	Policy = governor.Policy
	// Threshold, Hysteresis, Predictive, EnergyBudget, Static are the
	// built-in policies.
	Threshold    = governor.Threshold
	Hysteresis   = governor.Hysteresis
	Predictive   = governor.Predictive
	EnergyBudget = governor.EnergyBudget
	Static       = governor.Static
)

var (
	// NewGovernor wires a policy to a reversible model under a contract.
	NewGovernor = governor.New
)

// Safety monitoring.
type (
	// Assessor fuses criticality signals.
	Assessor = safety.Assessor
	// Assessment is one tick's fused estimate.
	Assessment = safety.Assessment
	// Contract holds per-class accuracy floors.
	Contract = safety.Contract
	// Criticality is the danger class.
	Criticality = safety.Criticality
)

var (
	// DefaultAssessor and DefaultContract are the evaluation settings.
	DefaultAssessor = safety.DefaultAssessor
	DefaultContract = safety.DefaultContract
)

// Platform model.
type (
	// PlatformSpec holds embedded-platform cost constants.
	PlatformSpec = platform.Spec
	// Cost is a per-inference estimate.
	Cost = platform.Cost
)

var (
	// EmbeddedCPU and EmbeddedGPU are calibrated platform presets.
	EmbeddedCPU = platform.EmbeddedCPU
	EmbeddedGPU = platform.EmbeddedGPU
)

// Scenario simulation and the closed perception loop.
type (
	// Scenario scripts one driving run.
	Scenario = sim.Scenario
	// World is the live simulation state.
	World = sim.World
	// LoopConfig and LoopResult parameterize perception.RunScenario.
	LoopConfig = perception.LoopConfig
	// LoopResult aggregates a closed-loop run.
	LoopResult = perception.LoopResult
	// Pipeline is the frame-by-frame detector.
	Pipeline = perception.Pipeline
)

var (
	// NewWorld starts a scenario.
	NewWorld = sim.NewWorld
	// AllScenarios returns the six evaluation scenarios.
	AllScenarios = sim.AllScenarios
	// FindScenario resolves a scenario by name.
	FindScenario = sim.FindScenario
	// CutIn, HighwayCruise etc. build individual scenarios.
	CutIn              = sim.CutIn
	HighwayCruise      = sim.HighwayCruise
	UrbanTraffic       = sim.UrbanTraffic
	PedestrianCrossing = sim.PedestrianCrossing
	SensorDegradation  = sim.SensorDegradation
	PedestrianInFog    = sim.PedestrianInFog
	RandomTraffic      = sim.RandomTraffic
	// RunScenario executes the closed perception/adaptation loop.
	RunScenario = perception.RunScenario
	// RunStack executes the same loop over any Stack (e.g. a fleet
	// instance).
	RunStack = perception.RunStack
	// NewPipeline wraps a classifier for frame-by-frame detection.
	NewPipeline = perception.NewPipeline
)

// Fleet deployment: many model instances sharing one platform and budget.
type (
	// Fleet is a registry of named model instances.
	Fleet = fleet.Fleet
	// FleetInstance is one named pipeline+model pair behind a per-instance
	// lock; it satisfies Stack and the governor's Target seam.
	FleetInstance = fleet.Instance
	// FleetBudget is the aggregate per-inference resource envelope.
	FleetBudget = fleet.Budget
	// FleetBudgetGovernor retargets prune levels to hold a FleetBudget.
	FleetBudgetGovernor = fleet.BudgetGovernor
	// FleetDispatcher fans frames out to instances on worker goroutines.
	FleetDispatcher = fleet.Dispatcher
	// Stack is the closed-loop seam RunStack drives.
	Stack = perception.Stack
)

var (
	// NewFleet, NewFleetInstance, NewFleetBudgetGovernor and
	// NewFleetDispatcher construct the fleet layer.
	NewFleet               = fleet.New
	NewFleetInstance       = fleet.NewInstance
	NewFleetBudgetGovernor = fleet.NewBudgetGovernor
	NewFleetDispatcher     = fleet.NewDispatcher
	// WithFleetAccuracyFloor and WithFleetRebalanceObserver configure the
	// budget governor.
	WithFleetAccuracyFloor     = fleet.WithAccuracyFloor
	WithFleetRebalanceObserver = fleet.WithRebalanceObserver
)

// Datasets.
type (
	// Dataset is a labeled image set.
	Dataset = dataset.Dataset
	// SignConfig and ObstacleConfig parameterize the generators.
	SignConfig     = dataset.SignConfig
	ObstacleConfig = dataset.ObstacleConfig
)

var (
	// Signs and Obstacles generate the synthetic perception datasets.
	Signs     = dataset.Signs
	Obstacles = dataset.Obstacles
)
