package revprune_test

import (
	"fmt"
	"log"

	revprune "repro"
)

// Example demonstrates the core reversible-pruning loop: build a model,
// attach nested pruning levels, deepen, and travel back to the exact dense
// weights.
func Example() {
	rng := revprune.NewRNG(1)
	model := revprune.NewSequential("demo",
		revprune.NewDense("fc1", 8, 32, rng),
		revprune.NewReLU("relu"),
		revprune.NewDense("fc2", 32, 4, rng),
	)
	denseWeights := model.Param("fc1/weight").Value.Clone()

	plans, err := (revprune.MagnitudeGlobal{}).PlanNested(model, []float64{0.5, 0.9})
	if err != nil {
		log.Fatal(err)
	}
	rm, err := revprune.Build(model, plans)
	if err != nil {
		log.Fatal(err)
	}

	if err := rm.ApplyLevel(2); err != nil { // 90% sparse
		log.Fatal(err)
	}
	sparse := model.Param("fc1/weight").Value.Sparsity() > 0.5

	if err := rm.RestoreFull(); err != nil { // back to the future
		log.Fatal(err)
	}
	restored := model.Param("fc1/weight").Value

	fmt.Println("pruned beyond 50%:", sparse)
	fmt.Println("levels:", rm.NumLevels())
	fmt.Println("restored bit-exact:", rm.VerifyDense() == nil && restored.Data()[0] == denseWeights.Data()[0])
	// Output:
	// pruned beyond 50%: true
	// levels: 3
	// restored bit-exact: true
}
